"""Seeded random generator of multi-TU C corpora with linkage variety.

A corpus is a set of *modules* — small self-contained function families
whose const-inference behaviour is known by construction (the same
taxonomy as :mod:`repro.benchsuite.generator`, reshaped for linking) —
plus an *assignment* of modules to translation units.  Modules reference
each other only through external symbols declared in a shared header
block that every unit repeats, so any assignment of modules to any
number of units renders a linkable program, and **re-partitioning**
(moving modules between units) is a qualifier-preserving metamorphic
transform: the linked program's classification multiset must not move.

Linkage variety covered:

* external functions called cross-TU through ``extern`` prototypes;
* ``static`` helper functions (globally-unique names, so the linker's
  ``name@unit`` alpha-renaming stays comparable to the textual
  concatenation modulo suffix);
* tentative global definitions with ``extern`` declarations in every
  other unit, written and read from different modules;
* function pointers: a dispatch module stores an address-taken handler
  and calls it indirectly, exercising the whole-program call graph's
  pointer resolution;
* ``const``-declared parameters, read-only undeclared parameters,
  mixed-use forwarders (the polymorphism gap, split across TUs), writers,
  and a strchr-style cast that feeds the checker's ``casts-away-const``.

Everything is a pure function of the seed.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Module:
    """One atomic family of top-level definitions."""

    name: str
    code: str
    #: Corpus-wide external declarations this module's symbols need.
    protos: tuple[str, ...] = ()
    externs: tuple[str, ...] = ()
    #: A ``int f(void)`` entry point for the corpus driver, if any.
    entry: str | None = None


@dataclass
class CCorpus:
    """A generated multi-TU program: modules plus a unit assignment."""

    seed: int
    modules: list[Module]
    assignment: list[int]  # module index -> unit index
    n_units: int

    def unit_names(self) -> list[str]:
        return [f"u{i}.c" for i in range(self.n_units)]

    def _shared_header(self) -> str:
        lines: list[str] = []
        for m in self.modules:
            lines.extend(m.externs)
        for m in self.modules:
            lines.extend(m.protos)
        return "\n".join(lines)

    def sources(self) -> dict[str, str]:
        """Render each translation unit's text."""
        header = self._shared_header()
        out: dict[str, str] = {}
        for unit in range(self.n_units):
            chunks = [
                m.code
                for m, owner in zip(self.modules, self.assignment)
                if owner == unit
            ]
            body = "\n".join(chunks)
            out[f"u{unit}.c"] = f"{header}\n\n{body}\n"
        return out

    def concat_source(self) -> str:
        """The corpus as one textually-concatenated translation unit."""
        srcs = self.sources()
        return "".join(srcs[name] for name in sorted(srcs))

    def repartitioned(self, seed: int, n_units: int | None = None) -> "CCorpus":
        """The same modules dealt onto a fresh unit assignment."""
        rng = random.Random(seed)
        units = n_units if n_units is not None else rng.randint(1, max(2, self.n_units))
        assignment = [rng.randrange(units) for _ in self.modules]
        # keep every unit inhabited so the render has no empty TUs
        for unit in range(units):
            if unit not in assignment:
                assignment[rng.randrange(len(assignment))] = unit
        return CCorpus(self.seed, self.modules, assignment, units)


# ---------------------------------------------------------------------------
# Error seeding
# ---------------------------------------------------------------------------

#: Crude token split for corruption: identifiers/numbers, or any single
#: non-space character.  Good enough to pick realistic deletion points.
_TOKEN_RE = re.compile(r"\w+|[^\s\w]")


def _corrupt_delete_token(text: str, rng: random.Random) -> str:
    """Drop one token somewhere past the shared header block."""
    matches = list(_TOKEN_RE.finditer(text))
    if len(matches) < 8:
        return text
    victim = matches[rng.randrange(len(matches) // 2, len(matches))]
    return text[: victim.start()] + text[victim.end() :]


def _corrupt_unbalance_brace(text: str, rng: random.Random) -> str:
    """Delete one ``{`` or ``}``, unbalancing a block."""
    braces = [i for i, ch in enumerate(text) if ch in "{}"]
    if not braces:
        return _corrupt_delete_token(text, rng)
    victim = rng.choice(braces)
    return text[:victim] + text[victim + 1 :]


def _corrupt_truncate_decl(text: str, rng: random.Random) -> str:
    """Cut the unit mid-declaration: everything after a random point in
    the second half is gone, usually leaving an unterminated block."""
    if len(text) < 16:
        return text
    cut = rng.randrange(len(text) // 2, len(text))
    return text[:cut]


_CORRUPTIONS: dict[str, object] = {
    "delete-token": _corrupt_delete_token,
    "unbalance-brace": _corrupt_unbalance_brace,
    "truncate-decl": _corrupt_truncate_decl,
}


def corrupt(source: str, seed: int, n_errors: int = 1) -> str:
    """Seed ``n_errors`` syntax errors into C source text.

    Each error is one of: delete a token, delete a brace (unbalancing a
    block), or truncate the unit mid-declaration.  Pure function of
    ``(source, seed, n_errors)``.  A mutation can happen to leave the
    text parseable (deleting a redundant token); the ingestion oracle
    only demands that recovery never crashes and stays conservative, so
    benign mutations are fine.
    """
    rng = random.Random(seed)
    text = source
    kinds = sorted(_CORRUPTIONS)
    for _ in range(max(1, n_errors)):
        mutate = _CORRUPTIONS[rng.choice(kinds)]
        text = mutate(text, rng)  # type: ignore[operator]
    return text


class CCorpusGenerator:
    """Generates one :class:`CCorpus` from a seed."""

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(seed)
        self._counter = 0
        self.modules: list[Module] = []
        self._entries: list[str] = []

    def _k(self) -> int:
        self._counter += 1
        return self._counter

    def _add(self, module: Module) -> None:
        self.modules.append(module)
        if module.entry:
            self._entries.append(module.entry)

    # -- module families ------------------------------------------------
    def mod_const_reader(self) -> None:
        """Declared-const parameter, read only."""
        k = self._k()
        code = (
            f"int tk_rd{k}(const int *p) {{\n"
            f"    return p[0] + p[{self.rng.randint(1, 3)}];\n"
            f"}}\n"
            f"int tk_use_rd{k}(void) {{\n"
            f"    int buf[4];\n"
            f"    buf[0] = {self.rng.randint(1, 9)};\n"
            f"    buf[1] = 2;\n"
            f"    buf[2] = 3;\n"
            f"    buf[3] = 4;\n"
            f"    return tk_rd{k}(buf);\n"
            f"}}\n"
        )
        self._add(
            Module(
                f"const_reader{k}",
                code,
                protos=(
                    f"int tk_rd{k}(const int *p);",
                    f"int tk_use_rd{k}(void);",
                ),
                entry=f"tk_use_rd{k}",
            )
        )

    def mod_plain_reader(self) -> None:
        """Undeclared read-only parameter (inference adds const)."""
        k = self._k()
        code = (
            f"int tk_scan{k}(int *p) {{\n"
            f"    return p[0] * {self.rng.randint(2, 5)};\n"
            f"}}\n"
            f"int tk_use_scan{k}(void) {{\n"
            f"    int data[2];\n"
            f"    data[0] = {self.rng.randint(1, 9)};\n"
            f"    data[1] = 0;\n"
            f"    return tk_scan{k}(data);\n"
            f"}}\n"
        )
        self._add(
            Module(
                f"plain_reader{k}",
                code,
                protos=(
                    f"int tk_scan{k}(int *p);",
                    f"int tk_use_scan{k}(void);",
                ),
                entry=f"tk_use_scan{k}",
            )
        )

    def mod_forwarder_family(self) -> None:
        """The polymorphism gap, split across modules (and so, usually,
        across TUs): a forwarder defined in one module, a writing caller
        and a reading caller in two more."""
        k = self._k()
        fwd = Module(
            f"fwd{k}",
            (
                f"int *tk_fwd{k}(int *x) {{\n"
                f"    return x;\n"
                f"}}\n"
            ),
            protos=(f"int *tk_fwd{k}(int *x);",),
        )
        put = Module(
            f"fwd_put{k}",
            (
                f"int tk_fwd_put{k}(void) {{\n"
                f"    int slot;\n"
                f"    slot = 0;\n"
                f"    *tk_fwd{k}(&slot) = {self.rng.randint(1, 50)};\n"
                f"    return slot;\n"
                f"}}\n"
            ),
            protos=(f"int tk_fwd_put{k}(void);",),
            entry=f"tk_fwd_put{k}",
        )
        get = Module(
            f"fwd_get{k}",
            (
                f"int tk_fwd_get{k}(void) {{\n"
                f"    int cell;\n"
                f"    cell = {self.rng.randint(1, 50)};\n"
                f"    return *tk_fwd{k}(&cell);\n"
                f"}}\n"
            ),
            protos=(f"int tk_fwd_get{k}(void);",),
            entry=f"tk_fwd_get{k}",
        )
        for m in (fwd, put, get):
            self._add(m)

    def mod_writer(self) -> None:
        """A genuinely non-const position."""
        k = self._k()
        code = (
            f"void tk_fill{k}(int *dst) {{\n"
            f"    dst[0] = {self.rng.randint(1, 9)};\n"
            f"}}\n"
            f"int tk_use_fill{k}(void) {{\n"
            f"    int area[2];\n"
            f"    tk_fill{k}(area);\n"
            f"    return area[0];\n"
            f"}}\n"
        )
        self._add(
            Module(
                f"writer{k}",
                code,
                protos=(
                    f"void tk_fill{k}(int *dst);",
                    f"int tk_use_fill{k}(void);",
                ),
                entry=f"tk_use_fill{k}",
            )
        )

    def mod_global_family(self) -> None:
        """A tentative global defined in one module, written and read
        through an accessor from two other modules."""
        k = self._k()
        owner = Module(
            f"global{k}",
            (
                f"int tk_g{k};\n"
                f"int *tk_getg{k}(void) {{\n"
                f"    return &tk_g{k};\n"
                f"}}\n"
            ),
            protos=(f"int *tk_getg{k}(void);",),
            externs=(f"extern int tk_g{k};",),
        )
        setter = Module(
            f"global_set{k}",
            (
                f"int tk_setg{k}(void) {{\n"
                f"    *tk_getg{k}() = {self.rng.randint(1, 99)};\n"
                f"    return tk_g{k};\n"
                f"}}\n"
            ),
            protos=(f"int tk_setg{k}(void);",),
            entry=f"tk_setg{k}",
        )
        reader = Module(
            f"global_read{k}",
            (
                f"int tk_readg{k}(void) {{\n"
                f"    return *tk_getg{k}();\n"
                f"}}\n"
            ),
            protos=(f"int tk_readg{k}(void);",),
            entry=f"tk_readg{k}",
        )
        for m in (owner, setter, reader):
            self._add(m)

    def mod_static_helper(self) -> None:
        """Internal linkage: a static helper behind an external wrapper.
        The name is globally unique, so the linker's ``@unit`` renaming
        stays comparable to the concatenated program modulo suffix."""
        k = self._k()
        mult = self.rng.randint(2, 7)
        code = (
            f"static int tk_h{k}(const int *p) {{\n"
            f"    return p[0] * {mult};\n"
            f"}}\n"
            f"int tk_wrap{k}(void) {{\n"
            f"    int v[1];\n"
            f"    v[0] = {self.rng.randint(1, 9)};\n"
            f"    return tk_h{k}(v);\n"
            f"}}\n"
        )
        self._add(
            Module(
                f"static{k}",
                code,
                protos=(f"int tk_wrap{k}(void);",),
                entry=f"tk_wrap{k}",
            )
        )

    def mod_strchr_like(self) -> None:
        """Const parameter returned through a cast — a planted
        ``casts-away-const`` finding for the checker oracles."""
        k = self._k()
        code = (
            f"char *tk_find{k}(const char *s, int c) {{\n"
            f"    while (*s) {{\n"
            f"        if (*s == c) {{\n"
            f"            return (char *)s;\n"
            f"        }}\n"
            f"        s++;\n"
            f"    }}\n"
            f"    return (char *)0;\n"
            f"}}\n"
            f"int tk_use_find{k}(void) {{\n"
            f"    char word[3];\n"
            f"    char *hit;\n"
            f"    word[0] = 'a';\n"
            f"    word[1] = 'b';\n"
            f"    word[2] = 0;\n"
            f"    hit = tk_find{k}(word, 'b');\n"
            f"    if (hit) {{\n"
            f"        return *hit;\n"
            f"    }}\n"
            f"    return 0;\n"
            f"}}\n"
        )
        self._add(
            Module(
                f"strchr{k}",
                code,
                protos=(
                    f"char *tk_find{k}(const char *s, int c);",
                    f"int tk_use_find{k}(void);",
                ),
                entry=f"tk_use_find{k}",
            )
        )

    def mod_dispatch_family(self) -> None:
        """Indirect calls through a function-pointer global: the handlers
        are reachable only through the pointer, so the whole-program call
        graph's address-taken resolution is on the hook."""
        k = self._k()
        handlers = Module(
            f"handlers{k}",
            (
                f"int tk_hquiet{k}(int *p) {{\n"
                f"    return p[0];\n"
                f"}}\n"
                f"int tk_hloud{k}(int *p) {{\n"
                f"    p[0] = p[0] + 1;\n"
                f"    return p[0];\n"
                f"}}\n"
            ),
            protos=(
                f"int tk_hquiet{k}(int *p);",
                f"int tk_hloud{k}(int *p);",
            ),
        )
        dispatch = Module(
            f"dispatch{k}",
            (
                f"int (*tk_handler{k})(int *p);\n"
                f"int tk_dispatch{k}(void) {{\n"
                f"    int cell[1];\n"
                f"    cell[0] = {self.rng.randint(1, 9)};\n"
                f"    tk_handler{k} = tk_hquiet{k};\n"
                f"    tk_handler{k} = tk_hloud{k};\n"
                f"    return tk_handler{k}(cell);\n"
                f"}}\n"
            ),
            protos=(f"int tk_dispatch{k}(void);",),
            externs=(f"extern int (*tk_handler{k})(int *p);",),
            entry=f"tk_dispatch{k}",
        )
        self._add(handlers)
        self._add(dispatch)

    def mod_driver(self) -> None:
        """One driver calling every entry point, connecting the FDG."""
        k = self._k()
        lines = [f"int tk_main{k}(void) {{", "    int total = 0;"]
        for entry in self._entries:
            lines.append(f"    total = total + {entry}();")
        lines.append("    return total;")
        lines.append("}")
        self._add(
            Module(
                f"driver{k}",
                "\n".join(lines) + "\n",
                protos=(f"int tk_main{k}(void);",),
            )
        )

    # -- corpus assembly -------------------------------------------------
    _FAMILIES = (
        "const_reader",
        "plain_reader",
        "forwarder",
        "writer",
        "global",
        "static",
        "strchr",
        "dispatch",
    )

    def corpus(
        self, n_units: int | None = None, n_families: int | None = None
    ) -> CCorpus:
        rng = self.rng
        units = n_units if n_units is not None else rng.randint(2, 4)
        families = n_families if n_families is not None else rng.randint(3, 6)
        for _ in range(families):
            family = rng.choice(self._FAMILIES)
            getattr(
                self,
                {
                    "const_reader": "mod_const_reader",
                    "plain_reader": "mod_plain_reader",
                    "forwarder": "mod_forwarder_family",
                    "writer": "mod_writer",
                    "global": "mod_global_family",
                    "static": "mod_static_helper",
                    "strchr": "mod_strchr_like",
                    "dispatch": "mod_dispatch_family",
                }[family],
            )()
        self.mod_driver()

        assignment = [rng.randrange(units) for _ in self.modules]
        for unit in range(units):
            if unit not in assignment:
                assignment[rng.randrange(len(assignment))] = unit
        return CCorpus(self.seed, self.modules, assignment, units)


def generate_c_corpus(seed: int, **kwargs) -> CCorpus:
    """One seeded multi-TU C corpus."""
    return CCorpusGenerator(seed).corpus(**kwargs)


# ---------------------------------------------------------------------------
# Seeded resource-bug programs (the flow-sensitive linearity pack)
# ---------------------------------------------------------------------------

_RESOURCE_PROTOS = (
    "void *malloc(unsigned long size);",
    "void free(void *ptr);",
    "unsigned long strlen(const char *s);",
    "int getchar(void);",
)


@dataclass(frozen=True)
class ResourceProgram:
    """One seeded single-TU program with known planted resource bugs.

    ``expected`` is the set of linearity-pack check names the planted
    bugs must produce (and the clean functions must not add to)."""

    seed: int
    source: str
    expected: frozenset[str]


#: template kind -> (check name or None, body template).  Branch
#: conditions test ``getchar()`` rather than calls that take the
#: pointer: passing the pointer to an unknown callee counts as a
#: possible ownership hand-off and deliberately suppresses findings.
_RESOURCE_TEMPLATES: dict[str, tuple[str | None, str]] = {
    "double_free": (
        "double-free",
        "int {fn}(void) {{\n"
        "{dead}"
        "    char *{p} = malloc(32);\n"
        "    if (!{p})\n"
        "        return -1;\n"
        "    if (getchar() < 0) {{\n"
        "        free({p});\n"
        "    }}\n"
        "    free({p});\n"
        "    return 0;\n"
        "}}\n",
    ),
    "leak": (
        "resource-leak",
        "int {fn}(void) {{\n"
        "{dead}"
        "    char *{p} = malloc(64);\n"
        "    if (!{p})\n"
        "        return -1;\n"
        "    if (getchar() < 0)\n"
        "        return -2;\n"
        "    free({p});\n"
        "    return 0;\n"
        "}}\n",
    ),
    "use_after_free": (
        "use-after-free",
        "unsigned long {fn}(void) {{\n"
        "{dead}"
        "    char *{p} = malloc(16);\n"
        "    if (!{p})\n"
        "        return 0;\n"
        "    free({p});\n"
        "    return strlen({p});\n"
        "}}\n",
    ),
    "alias": (
        "double-free",
        "void {fn}(void) {{\n"
        "{dead}"
        "    char *{p} = malloc(8);\n"
        "    char *{q} = {p};\n"
        "    free({q});\n"
        "    free({p});\n"
        "}}\n",
    ),
    "clean": (
        None,
        "int {fn}(void) {{\n"
        "{dead}"
        "    char *{p} = malloc(32);\n"
        "    if (!{p})\n"
        "        return -1;\n"
        "    unsigned long {n} = strlen({p});\n"
        "    free({p});\n"
        "    return (int){n};\n"
        "}}\n",
    ),
    "handoff": (
        None,
        "char *{fn}(void) {{\n"
        "{dead}"
        "    char *{p} = malloc(8);\n"
        "    if (!{p})\n"
        "        return 0;\n"
        "    return {p};\n"
        "}}\n",
    ),
}


def generate_resource_program(
    seed: int, rename_salt: int = 0, dead_decls: bool = False
) -> ResourceProgram:
    """One seeded program of planted resource bugs and clean controls.

    The structure (which templates, in which order) is a pure function
    of ``seed`` alone; ``rename_salt`` alpha-renames every local and
    ``dead_decls`` inserts unused scalar declarations, so the three
    variants of one seed are metamorphic siblings whose linearity-pack
    findings must agree."""
    rng = random.Random(seed)
    kinds = sorted(_RESOURCE_TEMPLATES)
    chosen = [rng.choice(kinds) for _ in range(rng.randint(3, 6))]
    if all(_RESOURCE_TEMPLATES[k][0] is None for k in chosen):
        chosen[0] = "double_free"

    def v(base: str, i: int) -> str:
        return f"{base}{i}" if rename_salt == 0 else f"{base}{i}_r{rename_salt}"

    parts: list[str] = list(_RESOURCE_PROTOS) + [""]
    expected: set[str] = set()
    for i, kind in enumerate(chosen):
        check, template = _RESOURCE_TEMPLATES[kind]
        if check is not None:
            expected.add(check)
        dead = ""
        if dead_decls:
            dead = f"    int unused{i} = 0;\n    int spare{i} = unused{i};\n"
        parts.append(
            template.format(
                fn=f"fn{i}_{kind}",
                p=v("p", i),
                q=v("q", i),
                n=v("n", i),
                dead=dead,
            )
        )
    return ResourceProgram(
        seed=seed, source="\n".join(parts), expected=frozenset(expected)
    )


# ---------------------------------------------------------------------------
# Seeded cross-TU ownership programs (whole-program linearity pack)
# ---------------------------------------------------------------------------

#: scenario kind -> (check name or None, body template).  Every
#: scenario calls the shared ownership helpers — ``{mk}`` returns an
#: owned pointer, ``{rel}`` frees its argument, ``{peek}`` borrows,
#: ``{chain}`` frees through a helper chain — so nothing here is
#: findable without the cross-TU summaries.  ``xfp`` releases through a
#: function pointer: the call site is unresolved, the Havoc firewall
#: must swallow the obligation, and no finding may appear.
_XTU_TEMPLATES: dict[str, tuple[str | None, str]] = {
    "xleak": (
        "resource-leak",
        "unsigned long {fn}(void) {{\n"
        "    char *{p} = {mk}(32);\n"
        "    if (!{p})\n"
        "        return 0;\n"
        "    return {peek}({p});\n"
        "}}\n",
    ),
    "xdouble": (
        "double-free",
        "void {fn}(void) {{\n"
        "    char *{p} = {mk}(16);\n"
        "    if (!{p})\n"
        "        return;\n"
        "    {rel}({p});\n"
        "    free({p});\n"
        "}}\n",
    ),
    "xchain": (
        "double-free",
        "void {fn}(void) {{\n"
        "    char *{p} = {mk}(8);\n"
        "    if (!{p})\n"
        "        return;\n"
        "    {chain}({p});\n"
        "    {rel}({p});\n"
        "}}\n",
    ),
    "xuaf": (
        "use-after-free",
        "unsigned long {fn}(void) {{\n"
        "    char *{p} = {mk}(16);\n"
        "    if (!{p})\n"
        "        return 0;\n"
        "    {rel}({p});\n"
        "    return {peek}({p});\n"
        "}}\n",
    ),
    "xclean": (
        None,
        "unsigned long {fn}(void) {{\n"
        "    char *{p} = {mk}(64);\n"
        "    if (!{p})\n"
        "        return 0;\n"
        "    unsigned long {n} = {peek}({p});\n"
        "    {rel}({p});\n"
        "    return {n};\n"
        "}}\n",
    ),
    "xfp": (
        None,
        "void {fn}(void) {{\n"
        "    void (*{f})(char *) = {rel};\n"
        "    char *{p} = {mk}(8);\n"
        "    if (!{p})\n"
        "        return;\n"
        "    {f}({p});\n"
        "}}\n",
    ),
}


@dataclass(frozen=True)
class ResourceXTUProgram:
    """One seeded multi-TU program with known planted cross-TU resource
    bugs.  ``units`` maps unit name to source text; ``expected`` is the
    set of linearity-pack check names the planted bugs must produce
    under ``--whole-program`` (and nothing else may appear)."""

    seed: int
    units: dict[str, str]
    expected: frozenset[str]
    rename_salt: int = 0
    n_units: int = 3
    partition_salt: int = 0

    def sources(self) -> dict[str, str]:
        return dict(self.units)

    def repartitioned(self, salt: int, n_units: int | None = None) -> "ResourceXTUProgram":
        """The same functions dealt onto a fresh unit assignment: the
        whole-program finding multiset must not move."""
        return generate_resource_xtu_program(
            self.seed,
            rename_salt=self.rename_salt,
            n_units=n_units if n_units is not None else self.n_units,
            partition_salt=salt,
        )


def generate_resource_xtu_program(
    seed: int,
    rename_salt: int = 0,
    n_units: int = 3,
    partition_salt: int = 0,
) -> ResourceXTUProgram:
    """One seeded cross-TU ownership program.

    The allocation helper, the release helpers, and the consumer
    functions are dealt across ``n_units`` translation units, so every
    planted bug needs the whole-program ownership summaries to connect
    alloc and free sites.  The structure (which scenarios, in which
    order) is a pure function of ``seed`` alone; ``rename_salt``
    alpha-renames every local and ``partition_salt`` reshuffles the
    unit assignment, so the variants of one seed are metamorphic
    siblings whose whole-program findings must agree."""
    rng = random.Random(seed)
    kinds = sorted(_XTU_TEMPLATES)
    chosen = [rng.choice(kinds) for _ in range(rng.randint(3, 6))]
    if all(_XTU_TEMPLATES[k][0] is None for k in chosen):
        chosen[0] = "xleak"

    def v(base: str, i: int) -> str:
        return f"{base}{i}" if rename_salt == 0 else f"{base}{i}_s{rename_salt}"

    mk, rel, peek, chain = "mk_buf", "rel_buf", "peek_buf", "chain_rel"
    helpers = [
        f"char *{mk}(unsigned long n) {{\n"
        "    char *h = malloc(n);\n"
        "    if (!h)\n"
        "        return 0;\n"
        "    return h;\n"
        "}\n",
        f"void {rel}(char *h) {{\n    free(h);\n}}\n",
        f"unsigned long {peek}(const char *h) {{\n    return strlen(h);\n}}\n",
        f"void {chain}(char *h) {{\n    {rel}(h);\n}}\n",
    ]
    protos = list(_RESOURCE_PROTOS) + [
        f"char *{mk}(unsigned long n);",
        f"void {rel}(char *h);",
        f"unsigned long {peek}(const char *h);",
        f"void {chain}(char *h);",
    ]

    chunks: list[str] = list(helpers)
    expected: set[str] = set()
    for i, kind in enumerate(chosen):
        check, template = _XTU_TEMPLATES[kind]
        if check is not None:
            expected.add(check)
        chunks.append(
            template.format(
                fn=f"fn{i}_{kind}",
                p=v("p", i),
                n=v("n", i),
                f=v("f", i),
                mk=mk,
                rel=rel,
                peek=peek,
                chain=chain,
            )
        )

    units = max(2, n_units)
    prng = random.Random((seed, partition_salt, units).__hash__())
    assignment = [prng.randrange(units) for _ in chunks]
    # Keep the corpus genuinely cross-TU: the allocation helper must
    # not share a unit with every consumer.
    if len(set(assignment)) == 1:
        assignment[0] = (assignment[0] + 1) % units
    header = "\n".join(protos)
    out: dict[str, str] = {}
    for unit in range(units):
        body = "\n".join(
            chunk for chunk, owner in zip(chunks, assignment) if owner == unit
        )
        out[f"xtu{unit}.c"] = f"{header}\n\n{body}\n"
    return ResourceXTUProgram(
        seed=seed,
        units=out,
        expected=frozenset(expected),
        rename_salt=rename_salt,
        n_units=units,
        partition_salt=partition_salt,
    )
