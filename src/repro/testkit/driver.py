"""The budget-driven fuzz session behind ``python -m repro.testkit``.

A session interleaves lambda programs and C corpora (roughly 3:1 — the
lambda side is where the paper's semantics lives and is much cheaper per
program) from a deterministic seed stream, runs each through the full
oracle matrix, and on any disagreement shrinks the program with the
delta-debugging reducer and writes a ready-to-commit regression test
into the artifact directory.

Everything is a pure function of ``(seed, budget, engine config)``
except wall-clock cutoff: re-running with the same seed and a larger
budget replays the same program stream from the beginning.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from .cgen import generate_c_corpus
from .lamgen import generate_lambda
from .oracles import Disagreement, EngineConfig, check_c_corpus, check_lambda
from .reduce import (
    c_failure_predicate,
    emit_c_regression,
    emit_lambda_regression,
    failure_predicate,
    reduce_c_corpus,
    reduce_lambda,
)

#: Relatively prime to everything the generators do with their seeds, so
#: per-program subseeds never collide across sessions with nearby seeds.
_SEED_STRIDE = 1_000_003


@dataclass
class Failure:
    """One confirmed oracle disagreement, post-reduction."""

    kind: str  # "lambda" | "c"
    subseed: int
    disagreements: list[Disagreement]
    #: Concrete syntax of the reduced reproducer (lambda) or its unit
    #: count/module count summary (C).
    reduced: str
    artifact: str | None = None  # path of the emitted regression test

    def summary(self) -> str:
        names = ", ".join(sorted({d.oracle for d in self.disagreements}))
        where = f" -> {self.artifact}" if self.artifact else ""
        return f"{self.kind} subseed {self.subseed} [{names}]{where}"


@dataclass
class FuzzReport:
    """Outcome of one fuzz session."""

    seed: int
    programs: int = 0
    lambda_programs: int = 0
    c_corpora: int = 0
    stripped_fallbacks: int = 0
    failures: list[Failure] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        head = (
            f"seed {self.seed}: {self.programs} programs "
            f"({self.lambda_programs} lambda, {self.c_corpora} C) "
            f"in {self.elapsed_seconds:.1f}s — "
        )
        if self.ok:
            return head + "all oracles agree"
        lines = [head + f"{len(self.failures)} FAILURE(S)"]
        lines.extend("  " + f.summary() for f in self.failures)
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "programs": self.programs,
                "lambda_programs": self.lambda_programs,
                "c_corpora": self.c_corpora,
                "stripped_fallbacks": self.stripped_fallbacks,
                "elapsed_seconds": round(self.elapsed_seconds, 3),
                "failures": [
                    {
                        "kind": f.kind,
                        "subseed": f.subseed,
                        "oracles": sorted({d.oracle for d in f.disagreements}),
                        "details": [str(d) for d in f.disagreements],
                        "reduced": f.reduced,
                        "artifact": f.artifact,
                    }
                    for f in self.failures
                ],
            },
            indent=2,
        )


class FuzzSession:
    """One seeded, budgeted sweep of the oracle matrix."""

    def __init__(
        self,
        seed: int = 0,
        budget_seconds: float = 60.0,
        max_programs: int | None = None,
        config: EngineConfig | None = None,
        out_dir: str | Path | None = None,
        c_every: int = 4,
        max_depth: int = 5,
        progress: bool = False,
    ):
        self.seed = seed
        self.budget_seconds = budget_seconds
        self.max_programs = max_programs
        self.config = config if config is not None else EngineConfig()
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.c_every = max(2, c_every)
        self.max_depth = max_depth
        self.progress = progress

    # ------------------------------------------------------------------
    def run(self) -> FuzzReport:
        report = FuzzReport(seed=self.seed)
        start = time.perf_counter()
        deadline = start + self.budget_seconds
        index = 0
        while time.perf_counter() < deadline:
            if self.max_programs is not None and report.programs >= self.max_programs:
                break
            subseed = self.seed * _SEED_STRIDE + index
            # Every c_every-th slot is a C corpus; the rest are lambda.
            if index % self.c_every == self.c_every - 1:
                self._one_c(subseed, report)
            else:
                self._one_lambda(subseed, report)
            report.programs += 1
            index += 1
            if self.progress and report.programs % 50 == 0:
                elapsed = time.perf_counter() - start
                print(
                    f"  ... {report.programs} programs, "
                    f"{len(report.failures)} failure(s), {elapsed:.1f}s"
                )
        report.elapsed_seconds = time.perf_counter() - start
        return report

    # ------------------------------------------------------------------
    def _one_lambda(self, subseed: int, report: FuzzReport) -> None:
        generated = generate_lambda(subseed, max_depth=self.max_depth)
        report.lambda_programs += 1
        if generated.stripped:
            report.stripped_fallbacks += 1
        found = check_lambda(generated.expr, generated.language, self.config)
        if not found:
            return
        names = {d.oracle for d in found}
        predicate = failure_predicate(generated.language, names, self.config)
        reduced = generated.expr
        try:
            if predicate(generated.expr):
                reduced = reduce_lambda(generated.expr, predicate)
        except Exception:
            pass  # keep the unreduced reproducer rather than lose it
        failure = Failure("lambda", subseed, found, str(reduced))
        if self.out_dir is not None:
            path = self.out_dir / f"test_repro_lambda_{subseed}.py"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(emit_lambda_regression(reduced, found, subseed))
            failure.artifact = str(path)
        report.failures.append(failure)

    def _one_c(self, subseed: int, report: FuzzReport) -> None:
        corpus = generate_c_corpus(subseed)
        report.c_corpora += 1
        found = check_c_corpus(corpus, self.config)
        if not found:
            return
        names = {d.oracle for d in found}
        predicate = c_failure_predicate(names, self.config)
        reduced = corpus
        try:
            if predicate(corpus):
                reduced = reduce_c_corpus(corpus, predicate)
        except Exception:
            pass
        failure = Failure(
            "c",
            subseed,
            found,
            f"{len(reduced.modules)} module(s), {reduced.n_units} unit(s)",
        )
        if self.out_dir is not None:
            path = self.out_dir / f"test_repro_c_{subseed}.py"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(emit_c_regression(reduced, found, subseed))
            failure.artifact = str(path)
        report.failures.append(failure)
