"""The differential / metamorphic oracle matrix.

Every oracle compares two computations that the repo promises agree
exactly, and yields a :class:`Disagreement` when they do not:

Lambda programs (:func:`check_lambda`):

``solver``
    the bitmask condensation pipeline (:func:`repro.qual.solver.solve`)
    vs. the reference worklist solver (``solve_reference``) over the
    program's constraint system — per-variable least *and* greatest
    solutions, and the satisfiability verdict;
``flatcore``
    the flat-array CSR kernel (:func:`repro.qual.flatcore.flat_solve`)
    vs. the production pipeline over the same system — same
    per-variable fingerprints and verdict (runs on both the lambda and
    the C side);
``metamorphic-rename`` / ``metamorphic-deadlet``
    alpha-renaming all binders / inserting dead ``let`` bindings must
    not change the least qualified type or the verdict, in both the
    monomorphic and the (Letv)/(Var') polymorphic systems;
``subject-reduction``
    the paper's Theorem 1 as an executable oracle: every configuration
    along the Figure 5 reduction sequence re-typechecks (store typing
    per Definition 3) and the type's shape never moves.

C corpora (:func:`check_c_corpus`):

``solver``
    solve vs. solve_reference over ``run_poly``'s constraint system;
``jobs``
    ``run_poly(jobs=1)`` vs. the wavefront scheduler at ``jobs=N`` —
    positions, classifications, constraint count, and variable uids
    must be bit-identical;
``cache``
    a cold :meth:`~repro.constinfer.cache.AnalysisCache.cached_run`
    vs. the warm rerun of the same source;
``whole-concat``
    linking the corpus's units vs. analysing their textual
    concatenation (classification multiset, ``static`` names compared
    modulo the linker's ``@unit`` renaming);
``whole-jobs``
    ``run_whole_poly`` at ``jobs=1`` vs. ``jobs=N``;
``metamorphic-repartition``
    re-dealing modules onto a different TU partition must not move the
    whole-program classification multiset;
``checker``
    qlint over the linked program twice (independently linked) must
    render byte-identical SARIF, and the rule-id multiset must survive
    re-partitioning;
``resource``
    the flow-sensitive linearity pack over a seeded resource program
    (:func:`repro.testkit.cgen.generate_resource_program`): every
    planted double-free/use-after-free/leak is found (and nothing
    else), the finding multiset is invariant under alpha-renaming and
    dead-declaration insertion, and a cold vs. warm cached run renders
    byte-identical SARIF;
``resource-whole``
    the whole-program linearity pack over a seeded cross-TU ownership
    program (:func:`repro.testkit.cgen.generate_resource_xtu_program`):
    every planted cross-TU bug kind is found (and nothing else), each
    finding carries a multi-step flow path, the finding multiset is
    invariant under alpha-renaming and TU re-partitioning, and
    cold vs. warm cache and ``jobs=1`` vs. ``jobs=N`` runs render
    byte-identical SARIF;
``ingest``
    resilient ingestion is conservative: every *clean* unit pushed
    through the recovery path (:func:`repro.cfront.parse_c_resilient`)
    must report zero diagnostics and yield an AST repr-identical to the
    strict parser's, with byte-identical checker findings — and every
    *corrupted* unit (:func:`repro.testkit.cgen.corrupt` error seeding)
    must never crash the resilient front end or the best-effort checker.

Engines are injectable through :class:`EngineConfig` so the mutation
smoke test (and any future bug-seeding harness) can swap in a broken
solver and confirm the matrix catches it.
"""

from __future__ import annotations

import itertools
import tempfile
from dataclasses import dataclass
from typing import Callable

from ..cfront.sema import Program
from ..constinfer.cache import AnalysisCache
from ..constinfer.engine import InferenceRun, run_poly
from ..lam.ast import Expr, walk
from ..lam.eval import Evaluator, Store, StuckError
from ..lam.infer import Inference, QualTypeError, QualifiedLanguage, infer
from ..qual import qtypes as _qtypes
from ..qual.flatcore import flat_solve
from ..qual.qtypes import StdCon, StdType, StdVar, strip
from ..qual.solver import (
    Solution,
    UnsatisfiableError,
    solve,
    solve_reference,
)
from ..whole import link_sources, run_whole_poly
from .cgen import CCorpus
from .transforms import insert_dead_lets, rename_vars


@dataclass(frozen=True)
class Disagreement:
    """One oracle violation: which oracle fired and why."""

    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


@dataclass
class EngineConfig:
    """The engines under test, injectable for mutation testing.

    ``solve_fn`` is the production pipeline each differential pairs
    against ``reference_fn``; ``run_poly_fn`` is the C engine used for
    the jobs pairing.  ``oracles`` restricts which oracle families run
    (None = all); names match the module docstring.
    """

    solve_fn: Callable = solve
    reference_fn: Callable = solve_reference
    #: The flat-array CSR kernel the ``flatcore`` oracle pits against
    #: ``solve_fn`` (same fingerprints, same verdicts).
    flat_fn: Callable = flat_solve
    run_poly_fn: Callable = run_poly
    jobs: int = 2
    #: Evaluation budget for the subject-reduction oracle.
    fuel: int = 400
    #: Re-typecheck at most this many configurations per program.
    max_configs: int = 25
    oracles: frozenset[str] | None = None

    def enabled(self, name: str) -> bool:
        return self.oracles is None or name in self.oracles


# ---------------------------------------------------------------------------
# Shared fingerprint helpers
# ---------------------------------------------------------------------------


def _solution_fingerprint(solution: Solution) -> dict[str, tuple]:
    """Every variable's extreme solutions, keyed stably by (name, uid)."""
    out: dict[str, tuple] = {}
    for var in set(solution.least) | set(solution.greatest):
        out[f"{var.name}#{var.uid}"] = (
            tuple(sorted(solution.least_of(var).present)),
            tuple(sorted(solution.greatest_of(var).present)),
        )
    return out


def _solve_verdict(solve_fn: Callable, constraints, lattice, extra_vars=()):
    """('sat', fingerprint) or ('unsat', message head)."""
    try:
        solution = solve_fn(constraints, lattice, extra_vars=extra_vars)
    except UnsatisfiableError as exc:
        return ("unsat", str(exc).splitlines()[0])
    except Exception as exc:  # a crashing engine is its own disagreement
        return ("crash", f"{type(exc).__name__}: {exc}")
    return ("sat", _solution_fingerprint(solution))


def _diff_verdicts(name: str, a, b) -> Disagreement | None:
    if a[0] != b[0]:
        return Disagreement(name, f"verdicts differ: {a[0]} vs {b[0]}")
    if a[0] == "sat" and a[1] != b[1]:
        keys = [k for k in set(a[1]) | set(b[1]) if a[1].get(k) != b[1].get(k)]
        sample = ", ".join(
            f"{k}: {a[1].get(k)} vs {b[1].get(k)}" for k in sorted(keys)[:3]
        )
        return Disagreement(name, f"{len(keys)} variable(s) differ: {sample}")
    return None


def _pinned(fn: Callable, /, *args, **kwargs):
    """Run ``fn`` with the fresh-uid counter pinned to a fixed base, so
    two engine runs over the same program number their variables
    identically and can be compared byte-for-byte (the same trick the
    wavefront determinism tests use)."""
    saved = _qtypes._fresh_counter
    _qtypes._fresh_counter = itertools.count(1 << 40)
    try:
        return fn(*args, **kwargs)
    finally:
        _qtypes._fresh_counter = saved


def _run_fingerprint(run: InferenceRun, exact_vars: bool = True) -> tuple:
    """Positions + classifications (+ variable identities when the
    pairing promises bit-identical numbering)."""
    rows = []
    for p in run.positions:
        row = [p.function, p.where, p.depth, p.declared, run.classify(p).name]
        if exact_vars:
            row.append((p.var.name, p.var.uid))
        rows.append(tuple(row))
    return (tuple(rows), run.constraint_count)


def _normalized_multiset(run: InferenceRun) -> list[tuple]:
    """Classification multiset with static names compared modulo the
    linker's ``name@unit`` alpha-renaming."""
    return sorted(
        (
            p.function.split("@")[0],
            p.where,
            p.depth,
            p.declared,
            run.classify(p).name,
        )
        for p in run.positions
    )


# ---------------------------------------------------------------------------
# Lambda oracles
# ---------------------------------------------------------------------------


def _lambda_observable(
    expr: Expr, language: QualifiedLanguage, polymorphic: bool
) -> tuple[str, str]:
    """('ok', least-type) or ('ill-typed', message head)."""
    try:
        result = infer(expr, language, polymorphic=polymorphic)
    except QualTypeError as exc:
        return ("ill-typed", str(exc).splitlines()[0])
    return ("ok", str(result.least_qtype()))


def _replace_locs(e: Expr, names: dict[int, str]) -> Expr:
    """Every ``Loc a`` becomes ``Var names[a]`` (structure preserved)."""
    from ..lam.ast import (
        Annot,
        App,
        Assert,
        Assign,
        Deref,
        If,
        IntLit,
        Lam,
        Let,
        Loc,
        Ref,
        UnitLit,
        Var,
    )

    def go(e: Expr) -> Expr:
        match e:
            case Loc(address=a):
                return Var(names[a], span=e.span)
            case Var() | IntLit() | UnitLit():
                return e
            case Lam(param=p, body=b):
                return Lam(p, go(b), span=e.span)
            case Let(name=n, bound=b, body=body):
                return Let(n, go(b), go(body), span=e.span)
            case App(func=f, arg=a):
                return App(go(f), go(a), span=e.span)
            case If(cond=c, then=t, other=o):
                return If(go(c), go(t), go(o), span=e.span)
            case Ref(init=i):
                return Ref(go(i), span=e.span)
            case Deref(ref=r):
                return Deref(go(r), span=e.span)
            case Assign(target=t, value=v):
                return Assign(go(t), go(v), span=e.span)
            case Annot(qual=q, expr=inner):
                return Annot(q, go(inner), span=e.span)
            case Assert(expr=inner, qual=q):
                return Assert(go(inner), q, span=e.span)
        raise TypeError(f"unknown expression {e!r}")  # pragma: no cover

    return go(e)


def _config_expr(e: Expr, store: Store) -> Expr:
    """The configuration ``<store, e>`` as one closed expression.

    Definition 3 asks for *some* store typing under which the
    configuration typechecks.  Rather than guessing one (a per-cell
    least typing is incomplete — a cell may need a higher qualifier to
    join with annotated refs downstream), encode the existential: bind
    every cell as ``let __cellN = ref vN`` and substitute ``__cellN``
    for ``Loc N``, so the solver picks the cell qualifiers.  Exact
    because generated programs only store base-typed values (cells never
    hold locations) and each monomorphic ``let`` gives all uses of a
    location one shared type — precisely a store typing.
    """
    from ..lam.ast import Let, Ref

    addresses = sorted(store.cells)
    names = {a: f"__cell{a}" for a in addresses}
    body = _replace_locs(e, names)
    for a in reversed(addresses):
        body = Let(names[a], Ref(_replace_locs(store.cells[a], names)), body)
    return body


def _shape_key(t: StdType) -> str:
    """The shape with type variables renamed positionally, so two infer
    calls (whose fresh variable names differ) compare equal exactly when
    the shapes are alpha-equivalent."""
    names: dict[str, str] = {}

    def go(t: StdType) -> str:
        if isinstance(t, StdVar):
            return names.setdefault(t.name, f"s{len(names)}")
        assert isinstance(t, StdCon)
        if not t.args:
            return t.con.name
        return f"{t.con.name}({','.join(go(a) for a in t.args)})"

    return go(t)


def _shape_instance_of(general: StdType, specific: StdType) -> bool:
    """One-way matching: is ``specific`` a substitution instance of
    ``general``?  Subject reduction promises the original program's type
    stays derivable at every step, and in the monomorphic system the
    derivable types are exactly the substitution instances of the
    principal one — so each step's principal shape must match onto the
    step-0 shape (reduction may *generalize*, e.g. taking an ``if``
    branch drops the constraint that equated both branches' shapes)."""
    binding: dict[str, StdType] = {}

    def go(g: StdType, s: StdType) -> bool:
        if isinstance(g, StdVar):
            seen = binding.setdefault(g.name, s)
            return seen == s
        if not isinstance(s, StdCon) or g.con is not s.con:
            return False
        return all(go(ga, sa) for ga, sa in zip(g.args, s.args))

    return go(general, specific)


def _subject_reduction(
    expr: Expr, language: QualifiedLanguage, fuel: int, max_configs: int
) -> Disagreement | None:
    """Walk the reduction sequence, re-typechecking configurations."""
    evaluator = Evaluator(language.lattice)
    shapes: list[StdType] = []
    store = Store()
    current: Expr | None = expr
    steps = 0
    try:
        while current is not None and steps < fuel:
            if steps < max_configs:
                try:
                    result = infer(_config_expr(current, store), language)
                except QualTypeError as exc:
                    return Disagreement(
                        "subject-reduction",
                        f"configuration at step {steps} became ill-typed "
                        f"(no store typing exists): {str(exc).splitlines()[0]}",
                    )
                shapes.append(strip(result.least_qtype()))
            current = evaluator.step(current, store)
            steps += 1
    except StuckError as exc:
        return Disagreement(
            "subject-reduction",
            f"well-typed program got stuck at step {steps}: "
            f"{str(exc).splitlines()[0]}",
        )
    if steps >= fuel:
        return None  # possible divergence; not an oracle failure
    if shapes:
        original = shapes[0]
        for k, shape in enumerate(shapes[1:], start=1):
            if not _shape_instance_of(shape, original):
                return Disagreement(
                    "subject-reduction",
                    f"step {k} no longer admits the original type shape: "
                    f"{_shape_key(original)} vs {_shape_key(shape)}",
                )
    return None


def check_lambda(
    expr: Expr,
    language: QualifiedLanguage,
    config: EngineConfig | None = None,
) -> list[Disagreement]:
    """Run every lambda-side oracle over one well-typed program."""
    cfg = config if config is not None else EngineConfig()
    out: list[Disagreement] = []

    inference: Inference | None
    try:
        inference = infer(expr, language)
    except QualTypeError:
        inference = None

    if cfg.enabled("solver") and inference is not None:
        mentioned = list(inference.solution.least)
        a = _solve_verdict(
            cfg.solve_fn, inference.constraints, language.lattice, mentioned
        )
        b = _solve_verdict(
            cfg.reference_fn, inference.constraints, language.lattice, mentioned
        )
        if (d := _diff_verdicts("solver", a, b)) is not None:
            out.append(d)

    if cfg.enabled("flatcore") and inference is not None:
        mentioned = list(inference.solution.least)
        a = _solve_verdict(
            cfg.solve_fn, inference.constraints, language.lattice, mentioned
        )
        b = _solve_verdict(
            cfg.flat_fn, inference.constraints, language.lattice, mentioned
        )
        if (d := _diff_verdicts("flatcore", a, b)) is not None:
            out.append(d)

    for polymorphic in (False, True):
        mode = "poly" if polymorphic else "mono"
        base = _lambda_observable(expr, language, polymorphic)
        if cfg.enabled("metamorphic-rename"):
            renamed = _lambda_observable(
                rename_vars(expr, salt=1), language, polymorphic
            )
            if renamed != base:
                out.append(
                    Disagreement(
                        "metamorphic-rename",
                        f"[{mode}] {base} became {renamed} under alpha-renaming",
                    )
                )
        if cfg.enabled("metamorphic-deadlet"):
            deadened = _lambda_observable(
                insert_dead_lets(expr, seed=2), language, polymorphic
            )
            if deadened != base:
                out.append(
                    Disagreement(
                        "metamorphic-deadlet",
                        f"[{mode}] {base} became {deadened} under dead-let insertion",
                    )
                )

    if cfg.enabled("subject-reduction") and inference is not None:
        if (d := _subject_reduction(expr, language, cfg.fuel, cfg.max_configs)) is not None:
            out.append(d)

    return out


# ---------------------------------------------------------------------------
# C oracles
# ---------------------------------------------------------------------------


def check_c_corpus(
    corpus: CCorpus, config: EngineConfig | None = None
) -> list[Disagreement]:
    """Run every C-side oracle over one generated multi-TU corpus."""
    cfg = config if config is not None else EngineConfig()
    out: list[Disagreement] = []
    sources = corpus.sources()
    concat = corpus.concat_source()

    try:
        program = Program.from_source(concat, filename="concat.c")
    except Exception as exc:
        return [
            Disagreement(
                "engine-crash", f"concatenated corpus failed to parse: {exc}"
            )
        ]

    baseline: InferenceRun | None = None
    try:
        baseline = _pinned(cfg.run_poly_fn, program, jobs=1)
    except Exception as exc:
        out.append(Disagreement("engine-crash", f"run_poly(jobs=1): {exc}"))

    if cfg.enabled("solver") and baseline is not None:
        constraints = baseline.inference.constraints
        extra = [p.var for p in baseline.positions]
        a = _solve_verdict(
            cfg.solve_fn, constraints, baseline.solution.lattice, extra
        )
        b = _solve_verdict(
            cfg.reference_fn, constraints, baseline.solution.lattice, extra
        )
        if (d := _diff_verdicts("solver", a, b)) is not None:
            out.append(d)

    if cfg.enabled("flatcore") and baseline is not None:
        constraints = baseline.inference.constraints
        extra = [p.var for p in baseline.positions]
        a = _solve_verdict(
            cfg.solve_fn, constraints, baseline.solution.lattice, extra
        )
        b = _solve_verdict(
            cfg.flat_fn, constraints, baseline.solution.lattice, extra
        )
        if (d := _diff_verdicts("flatcore", a, b)) is not None:
            out.append(d)

    if cfg.enabled("jobs") and baseline is not None:
        try:
            parallel = _pinned(cfg.run_poly_fn, program, jobs=cfg.jobs)
        except Exception as exc:
            out.append(Disagreement("jobs", f"jobs={cfg.jobs} crashed: {exc}"))
        else:
            if _run_fingerprint(parallel) != _run_fingerprint(baseline):
                out.append(
                    Disagreement(
                        "jobs",
                        f"jobs=1 and jobs={cfg.jobs} runs differ "
                        f"({baseline.constraint_count} vs "
                        f"{parallel.constraint_count} constraints)",
                    )
                )

    if cfg.enabled("cache"):
        with tempfile.TemporaryDirectory(prefix="testkit-cache-") as tmp:
            cache = AnalysisCache(tmp)
            try:
                cold = cache.cached_run(concat, "concat.c", "poly")
                warm = cache.cached_run(concat, "concat.c", "poly")
            except Exception as exc:
                out.append(Disagreement("cache", f"cached_run crashed: {exc}"))
            else:
                if not (warm.timings and warm.timings.from_cache):
                    out.append(
                        Disagreement("cache", "second run did not hit the cache")
                    )
                if _run_fingerprint(cold, exact_vars=False) != _run_fingerprint(
                    warm, exact_vars=False
                ):
                    out.append(
                        Disagreement("cache", "cold and warm runs classify differently")
                    )
                if baseline is not None and _normalized_multiset(
                    cold
                ) != _normalized_multiset(baseline):
                    out.append(
                        Disagreement("cache", "cold cached run differs from direct run")
                    )

    whole = None
    if any(
        cfg.enabled(name)
        for name in ("whole-concat", "whole-jobs", "metamorphic-repartition", "checker")
    ):
        try:
            whole = _pinned(run_whole_poly, link_sources(sources), jobs=1)
        except Exception as exc:
            out.append(Disagreement("engine-crash", f"run_whole_poly: {exc}"))

    if cfg.enabled("whole-concat") and whole is not None and baseline is not None:
        if _normalized_multiset(whole.run) != _normalized_multiset(baseline):
            out.append(
                Disagreement(
                    "whole-concat",
                    "linked program and textual concatenation classify differently",
                )
            )

    if cfg.enabled("whole-jobs") and whole is not None:
        try:
            whole_jobs = _pinned(run_whole_poly, link_sources(sources), jobs=cfg.jobs)
        except Exception as exc:
            out.append(Disagreement("whole-jobs", f"jobs={cfg.jobs} crashed: {exc}"))
        else:
            if _run_fingerprint(whole_jobs.run) != _run_fingerprint(whole.run):
                out.append(
                    Disagreement(
                        "whole-jobs",
                        f"whole-program runs differ between jobs=1 and jobs={cfg.jobs}",
                    )
                )

    repartitioned = corpus.repartitioned(corpus.seed + 0x5EED)
    if cfg.enabled("metamorphic-repartition") and whole is not None:
        try:
            whole_rp = run_whole_poly(link_sources(repartitioned.sources()), jobs=1)
        except Exception as exc:
            out.append(
                Disagreement("metamorphic-repartition", f"repartitioned run crashed: {exc}")
            )
        else:
            if _normalized_multiset(whole_rp.run) != _normalized_multiset(whole.run):
                out.append(
                    Disagreement(
                        "metamorphic-repartition",
                        "classification multiset moved under TU re-partitioning",
                    )
                )

    if cfg.enabled("checker"):
        out.extend(_checker_oracle(sources, repartitioned))

    if cfg.enabled("ingest"):
        out.extend(_ingest_oracle(sources, corpus.seed))

    if cfg.enabled("resource"):
        out.extend(check_resource_program(corpus.seed))

    if cfg.enabled("resource-whole"):
        out.extend(check_resource_xtu(corpus.seed, jobs=cfg.jobs))

    return out


def _checker_oracle(
    sources: dict[str, str], repartitioned: CCorpus
) -> list[Disagreement]:
    """SARIF byte-stability across independent runs, and rule-multiset
    stability under re-partitioning."""
    from ..checker.engine import check_linked_program
    from ..checker.render import render_sarif

    out: list[Disagreement] = []
    try:
        first = check_linked_program(link_sources(sources))
        second = check_linked_program(link_sources(sources))
    except Exception as exc:
        return [Disagreement("checker", f"check_linked_program crashed: {exc}")]

    if render_sarif(first) != render_sarif(second):
        out.append(
            Disagreement("checker", "two identical runs rendered different SARIF")
        )

    try:
        moved = check_linked_program(link_sources(repartitioned.sources()))
    except Exception as exc:
        return out + [Disagreement("checker", f"repartitioned check crashed: {exc}")]
    if sorted(d.check for d in first) != sorted(d.check for d in moved):
        out.append(
            Disagreement(
                "checker",
                "rule-id multiset moved under TU re-partitioning: "
                f"{sorted(d.check for d in first)} vs "
                f"{sorted(d.check for d in moved)}",
            )
        )
    return out


def _ingest_oracle(sources: dict[str, str], seed: int) -> list[Disagreement]:
    """Recovery conservatism: clean units through the resilient path are
    indistinguishable from the strict path; corrupted units never crash."""
    from ..cfront.cparser import parse_c, parse_c_resilient
    from ..checker.engine import check_source, check_source_resilient
    from .cgen import corrupt

    out: list[Disagreement] = []
    for name in sorted(sources):
        text = sources[name]

        # Clean unit: recovery must be invisible.
        try:
            strict_unit = parse_c(text, name)
        except Exception:
            continue  # a corpus bug, not an ingestion disagreement
        result = parse_c_resilient(text, name)
        if result.diagnostics:
            out.append(
                Disagreement(
                    "ingest",
                    f"{name}: clean unit produced {len(result.diagnostics)} "
                    f"diagnostic(s) through recovery: {result.diagnostics[0]}",
                )
            )
        elif repr(result.unit) != repr(strict_unit):
            out.append(
                Disagreement(
                    "ingest",
                    f"{name}: recovery path AST differs from strict parse",
                )
            )
        try:
            strict_findings = [d.to_dict() for d in check_source(text, name)]
        except Exception:
            strict_findings = None
        if strict_findings is not None:
            resilient_findings, status, _functions = check_source_resilient(
                text, name
            )
            if status != "ok":
                out.append(
                    Disagreement(
                        "ingest", f"{name}: clean unit got status {status!r}"
                    )
                )
            if [d.to_dict() for d in resilient_findings] != strict_findings:
                out.append(
                    Disagreement(
                        "ingest",
                        f"{name}: best-effort findings differ from strict "
                        f"findings on a clean unit",
                    )
                )

        # Corrupted unit: the resilient path must hold whatever we feed it.
        for salt in range(3):
            broken = corrupt(text, seed + salt, n_errors=1 + salt)
            try:
                parse_c_resilient(broken, name)
                check_source_resilient(broken, name)
            except Exception as exc:
                out.append(
                    Disagreement(
                        "ingest",
                        f"{name}: corrupted unit (seed {seed + salt}) crashed "
                        f"the resilient path: {type(exc).__name__}: {exc}",
                    )
                )
    return out


def check_resource_program(seed: int) -> list[Disagreement]:
    """The linearity-pack oracle over one seeded resource program
    (:func:`repro.testkit.cgen.generate_resource_program`):

    * every planted bug kind is found and nothing else is (the clean
      control functions add no findings), each finding carrying a
      multi-step flow path;
    * **metamorphic-rename** — alpha-renaming every local must not move
      the finding multiset (kind, line, flow length);
    * **metamorphic-deadlet** — inserting dead scalar declarations must
      not change the (kind, flow length) multiset;
    * **cache** — a cold and a warm cached run over the same file must
      render byte-identical SARIF.
    """
    from ..checker.checks import ALL_CHECKS, FLOW_PACK_CHECKS
    from ..checker.engine import check_source_resilient
    from ..checker.render import render_report
    from ..checker.runner import analyze as run_analysis
    from .cgen import generate_resource_program

    out: list[Disagreement] = []
    pack_names = {c.name for c in FLOW_PACK_CHECKS}

    def pack_findings(source: str) -> list | None:
        try:
            diags, status, _functions = check_source_resilient(
                source, "resource.c", checks=ALL_CHECKS
            )
        except Exception as exc:
            out.append(
                Disagreement("resource", f"resilient check crashed: {exc}")
            )
            return None
        if status != "ok":
            out.append(
                Disagreement(
                    "resource", f"generated program got status {status!r}"
                )
            )
        return [d for d in diags if d.check in pack_names]

    base = generate_resource_program(seed)
    found = pack_findings(base.source)
    if found is None:
        return out
    kinds = {d.check for d in found}
    if kinds != set(base.expected):
        out.append(
            Disagreement(
                "resource",
                f"seed {seed}: planted {sorted(base.expected)} but the "
                f"pack reported {sorted(kinds)}",
            )
        )
    for d in found:
        if len(d.flow) < 2:
            out.append(
                Disagreement(
                    "resource",
                    f"seed {seed}: {d.check} at line {d.span.line} lacks a "
                    f"multi-step flow path",
                )
            )

    def signature(diags: list, with_lines: bool) -> list[tuple]:
        return sorted(
            (d.check, len(d.flow)) + ((d.span.line,) if with_lines else ())
            for d in diags
        )

    renamed = pack_findings(generate_resource_program(seed, rename_salt=3).source)
    if renamed is not None and signature(found, True) != signature(renamed, True):
        out.append(
            Disagreement(
                "resource",
                f"seed {seed}: findings moved under alpha-renaming: "
                f"{signature(found, True)} vs {signature(renamed, True)}",
            )
        )

    dead = pack_findings(generate_resource_program(seed, dead_decls=True).source)
    if dead is not None and signature(found, False) != signature(dead, False):
        out.append(
            Disagreement(
                "resource",
                f"seed {seed}: findings moved under dead declarations: "
                f"{signature(found, False)} vs {signature(dead, False)}",
            )
        )

    check_names = tuple(c.name for c in ALL_CHECKS)
    with tempfile.TemporaryDirectory(prefix="testkit-flowsens-") as tmp:
        from pathlib import Path

        path = Path(tmp) / "resource.c"
        path.write_text(base.source, encoding="utf-8")
        cache_dir = Path(tmp) / "cache"
        try:
            cold = run_analysis([path], checks=check_names, cache_dir=cache_dir)
            warm = run_analysis([path], checks=check_names, cache_dir=cache_dir)
        except Exception as exc:
            out.append(Disagreement("resource", f"cached runs crashed: {exc}"))
        else:
            if warm.cache_hits < 1:
                out.append(
                    Disagreement("resource", "warm run did not hit the cache")
                )
            if render_report(cold, format="sarif") != render_report(
                warm, format="sarif"
            ):
                out.append(
                    Disagreement(
                        "resource",
                        "cold and warm cached runs rendered different SARIF",
                    )
                )
    return out


def check_resource_xtu(seed: int, jobs: int = 2) -> list[Disagreement]:
    """The whole-program linearity-pack oracle over one seeded cross-TU
    ownership program
    (:func:`repro.testkit.cgen.generate_resource_xtu_program`):

    * every planted cross-TU bug kind is found and nothing else is
      (the clean transfer and the function-pointer dispatch add no
      findings), each finding carrying a multi-step flow path;
    * **metamorphic-rename** — alpha-renaming every local must not move
      the (kind, flow length) multiset;
    * **metamorphic-repartition** — re-dealing the functions onto a
      different unit assignment must not move the (kind, message,
      flow length) multiset;
    * **cache / jobs** — cold vs. warm cached runs and ``jobs=1`` vs.
      ``jobs=N`` runs over the same tree must render byte-identical
      SARIF.
    """
    from pathlib import Path

    from ..checker.checks import ALL_CHECKS, FLOW_PACK_CHECKS
    from ..checker.render import render_report
    from ..checker.runner import analyze as run_analysis
    from .cgen import generate_resource_xtu_program

    out: list[Disagreement] = []
    pack_names = {c.name for c in FLOW_PACK_CHECKS}
    check_names = tuple(c.name for c in ALL_CHECKS)

    def run_whole(prog, tmp: str, jobs: int = 1, cache_dir=None):
        root = Path(tmp)
        for name, text in prog.units.items():
            (root / name).write_text(text, encoding="utf-8")
        return run_analysis(
            [root],
            checks=check_names,
            whole_program=True,
            jobs=jobs,
            cache_dir=cache_dir,
        )

    def pack_findings(prog, label: str) -> list | None:
        try:
            with tempfile.TemporaryDirectory(prefix="testkit-xtu-") as tmp:
                report = run_whole(prog, tmp)
        except Exception as exc:
            out.append(
                Disagreement("resource-whole", f"{label} run crashed: {exc}")
            )
            return None
        if report.errors:
            out.append(
                Disagreement(
                    "resource-whole",
                    f"{label} run reported errors: {report.errors}",
                )
            )
        return [d for d in report.diagnostics if d.check in pack_names]

    base = generate_resource_xtu_program(seed)
    found = pack_findings(base, "base")
    if found is None:
        return out
    kinds = {d.check for d in found}
    if kinds != set(base.expected):
        out.append(
            Disagreement(
                "resource-whole",
                f"seed {seed}: planted {sorted(base.expected)} but the "
                f"whole-program pack reported {sorted(kinds)}",
            )
        )
    for d in found:
        if len(d.flow) < 2:
            out.append(
                Disagreement(
                    "resource-whole",
                    f"seed {seed}: {d.check} at line {d.span.line} lacks a "
                    f"multi-step flow path",
                )
            )

    def signature(diags: list, with_message: bool) -> list[tuple]:
        return sorted(
            (d.check, len(d.flow)) + ((d.message,) if with_message else ())
            for d in diags
        )

    renamed = pack_findings(
        generate_resource_xtu_program(seed, rename_salt=3), "renamed"
    )
    if renamed is not None and signature(found, False) != signature(renamed, False):
        out.append(
            Disagreement(
                "resource-whole",
                f"seed {seed}: findings moved under alpha-renaming: "
                f"{signature(found, False)} vs {signature(renamed, False)}",
            )
        )

    moved = pack_findings(base.repartitioned(seed + 0x5EED), "repartitioned")
    if moved is not None and signature(found, True) != signature(moved, True):
        out.append(
            Disagreement(
                "resource-whole",
                f"seed {seed}: findings moved under TU re-partitioning: "
                f"{signature(found, True)} vs {signature(moved, True)}",
            )
        )

    try:
        with tempfile.TemporaryDirectory(prefix="testkit-xtu-") as tmp:
            from pathlib import Path as _Path

            cache_dir = _Path(tmp) / "cache"
            cold = run_whole(base, tmp, cache_dir=cache_dir)
            warm = run_whole(base, tmp, cache_dir=cache_dir)
            wide = run_whole(base, tmp, jobs=max(2, jobs))
            narrow = run_whole(base, tmp, jobs=1)
    except Exception as exc:
        out.append(
            Disagreement("resource-whole", f"replay runs crashed: {exc}")
        )
        return out
    if render_report(cold, format="sarif") != render_report(warm, format="sarif"):
        out.append(
            Disagreement(
                "resource-whole",
                "cold and warm cached whole-program runs rendered different SARIF",
            )
        )
    if render_report(narrow, format="sarif") != render_report(wide, format="sarif"):
        out.append(
            Disagreement(
                "resource-whole",
                f"whole-program SARIF differs between jobs=1 and jobs={max(2, jobs)}",
            )
        )
    return out


#: Every oracle family, for CLI validation and reporting.
ALL_ORACLES: tuple[str, ...] = (
    "solver",
    "flatcore",
    "jobs",
    "cache",
    "whole-concat",
    "whole-jobs",
    "metamorphic-rename",
    "metamorphic-deadlet",
    "metamorphic-repartition",
    "subject-reduction",
    "checker",
    "ingest",
    "resource",
    "resource-whole",
)


def lambda_program_size(expr: Expr) -> int:
    """AST node count (the reducer's minimality metric)."""
    return sum(1 for _ in walk(expr))
