"""repro.testkit — coverage-seeded differential & metamorphic fuzzing.

The repo carries four independently-optimised engines that must agree
bit-for-bit: the reference worklist solver vs. the bitmask condensation
kernel, the serial SCC traversal vs. the wavefront scheduler, cold runs
vs. the content-addressed cache, and per-TU analysis vs. the
whole-program link.  This package turns those pairings into a permanent
correctness-tooling subsystem:

* :mod:`repro.testkit.lamgen` — seeded generators of well-typed lambda
  programs (refs, annotations, assertions, let-polymorphism);
* :mod:`repro.testkit.cgen` — seeded multi-TU C corpora with linkage
  variety (extern/static/tentative, cross-TU calls and globals);
* :mod:`repro.testkit.transforms` — qualifier-preserving metamorphic
  transforms (renames, dead lets, TU re-partitioning);
* :mod:`repro.testkit.oracles` — the differential oracle matrix plus
  the subject-reduction oracle (paper §3.3, Theorem 1);
* :mod:`repro.testkit.reduce` — a delta-debugging reducer that shrinks
  any failing program to a minimal reproducer and emits it as a
  ready-to-commit regression test;
* :mod:`repro.testkit.driver` — the budget-driven fuzz session behind
  ``python -m repro.testkit fuzz``.
"""

from .driver import FuzzReport, FuzzSession
from .oracles import Disagreement, EngineConfig, check_c_corpus, check_lambda
from .reduce import reduce_c_corpus, reduce_lambda

__all__ = [
    "Disagreement",
    "EngineConfig",
    "FuzzReport",
    "FuzzSession",
    "check_c_corpus",
    "check_lambda",
    "reduce_c_corpus",
    "reduce_lambda",
]
