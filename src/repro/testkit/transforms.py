"""Qualifier-preserving metamorphic transforms.

Each transform maps a program to a program whose *observable* analysis
outcome must not move: for lambda programs the least qualified type of
the whole program (types never mention variable names, so renames are
invisible to it) and the well-typedness verdict; for C corpora the
classification multiset (handled by :meth:`repro.testkit.cgen.CCorpus.
repartitioned`).

The transforms deliberately change everything the analyses are supposed
to be insensitive to: binder names, dead bindings, and the partition of
code into translation units.
"""

from __future__ import annotations

import random

from ..lam.ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    Loc,
    Ref,
    UnitLit,
    Var,
)


def rename_vars(e: Expr, salt: int = 0) -> Expr:
    """Consistent capture-free alpha-rename of every binder.

    Binders are renamed positionally (``r{salt}_{n}``), so the output is
    deterministic in ``(expr, salt)`` and two alpha-equivalent inputs
    map to the same output.
    """
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"r{salt}_{counter[0]}"

    def go(e: Expr, env: dict[str, str]) -> Expr:
        match e:
            case Var(name=n):
                return Var(env.get(n, n), span=e.span)
            case IntLit() | UnitLit() | Loc():
                return e
            case Lam(param=p, body=b):
                new = fresh()
                return Lam(new, go(b, {**env, p: new}), span=e.span)
            case Let(name=n, bound=b, body=body):
                new = fresh()
                return Let(new, go(b, env), go(body, {**env, n: new}), span=e.span)
            case App(func=f, arg=a):
                return App(go(f, env), go(a, env), span=e.span)
            case If(cond=c, then=t, other=o):
                return If(go(c, env), go(t, env), go(o, env), span=e.span)
            case Ref(init=i):
                return Ref(go(i, env), span=e.span)
            case Deref(ref=r):
                return Deref(go(r, env), span=e.span)
            case Assign(target=t, value=v):
                return Assign(go(t, env), go(v, env), span=e.span)
            case Annot(qual=q, expr=inner):
                return Annot(q, go(inner, env), span=e.span)
            case Assert(expr=inner, qual=q):
                return Assert(go(inner, env), q, span=e.span)
            case _:  # pragma: no cover - exhaustive over AST
                raise TypeError(f"unknown expression {e!r}")

    return go(e, {})


def insert_dead_lets(e: Expr, seed: int = 0, probability: float = 0.25) -> Expr:
    """Wrap random subexpressions in ``let dead = 0 in e ni``.

    The bindings are never referenced, so inference must produce the
    same qualified type (the dead bound expression adds constraints only
    over its own fresh variables).  Deterministic in ``(expr, seed)``.
    """
    rng = random.Random(seed)
    counter = [0]

    def wrap(out: Expr) -> Expr:
        if rng.random() < probability:
            counter[0] += 1
            return Let(f"dead{counter[0]}", IntLit(0), out)
        return out

    def go(e: Expr) -> Expr:
        match e:
            case Var() | IntLit() | UnitLit() | Loc():
                return e
            case Lam(param=p, body=b):
                return wrap(Lam(p, go(b), span=e.span))
            case Let(name=n, bound=b, body=body):
                return wrap(Let(n, go(b), go(body), span=e.span))
            case App(func=f, arg=a):
                return wrap(App(go(f), go(a), span=e.span))
            case If(cond=c, then=t, other=o):
                return wrap(If(go(c), go(t), go(o), span=e.span))
            case Ref(init=i):
                return wrap(Ref(go(i), span=e.span))
            case Deref(ref=r):
                return wrap(Deref(go(r), span=e.span))
            case Assign(target=t, value=v):
                return wrap(Assign(go(t), go(v), span=e.span))
            case Annot(qual=q, expr=inner):
                return Annot(q, go(inner), span=e.span)
            case Assert(expr=inner, qual=q):
                return Assert(go(inner), q, span=e.span)
            case _:  # pragma: no cover - exhaustive over AST
                raise TypeError(f"unknown expression {e!r}")

    return go(e)
