"""Recursive-descent parser for the example language.

Grammar (binder forms are also allowed inside parentheses)::

    expr     := 'fn' IDENT '.' expr
              | 'let' IDENT '=' expr 'in' expr 'ni'
              | 'if' expr 'then' expr 'else' expr 'fi'
              | assign
    assign   := annot (':=' assign)?                 -- right associative
    annot    := '{' IDENT* '}' annot | unary         -- qualifier annotation
    unary    := 'ref' unary | '!' unary | app
    app      := postfix postfix+ | postfix           -- left associative
    postfix  := atom ('|' '{' IDENT* '}')*           -- qualifier assertion
    atom     := INT | IDENT | '(' ')' | '(' expr ')'

Examples from the paper::

    let x = ref ({nonzero} 37) in
    let y = x in
      y := 0;                      -- written: let _ = y := 0 in ... ni
      (!x)|{nonzero}
    ni ni
"""

from __future__ import annotations

from .ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    QualLiteral,
    Ref,
    Span,
    UnitLit,
    Var,
)
from .lexer import Token, TokenKind, tokenize


class ParseError(Exception):
    """Raised on a syntax error, with the offending token's location."""

    def __init__(self, message: str, token: Token):
        self.token = token
        super().__init__(f"{message} at {token.span} (found {token.kind.name} {token.text!r})")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        tok = self.peek()
        if tok.kind is not kind or (text is not None and tok.text != text):
            want = text if text is not None else kind.name
            raise ParseError(f"expected {want}", tok)
        return self.advance()

    def at_keyword(self, word: str) -> bool:
        tok = self.peek()
        return tok.kind is TokenKind.KEYWORD and tok.text == word

    # -- grammar -------------------------------------------------------
    def parse_expr(self) -> Expr:
        if self.at_keyword("fn"):
            start = self.advance().span
            param = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.DOT)
            body = self.parse_expr()
            return Lam(param, body, span=start)
        if self.at_keyword("let"):
            start = self.advance().span
            name = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.EQUALS)
            bound = self.parse_expr()
            self.expect(TokenKind.KEYWORD, "in")
            body = self.parse_expr()
            self.expect(TokenKind.KEYWORD, "ni")
            return Let(name, bound, body, span=start)
        if self.at_keyword("if"):
            start = self.advance().span
            cond = self.parse_expr()
            self.expect(TokenKind.KEYWORD, "then")
            then = self.parse_expr()
            self.expect(TokenKind.KEYWORD, "else")
            other = self.parse_expr()
            self.expect(TokenKind.KEYWORD, "fi")
            return If(cond, then, other, span=start)
        return self.parse_assign()

    def parse_assign(self) -> Expr:
        lhs = self.parse_annot()
        if self.peek().kind is TokenKind.ASSIGN:
            span = self.advance().span
            rhs = self.parse_assign()
            return Assign(lhs, rhs, span=span)
        return lhs

    def parse_qual_literal(self) -> QualLiteral:
        self.expect(TokenKind.LBRACE)
        names: list[str] = []
        while self.peek().kind is TokenKind.IDENT:
            names.append(self.advance().text)
        self.expect(TokenKind.RBRACE)
        return QualLiteral(frozenset(names))

    def parse_annot(self) -> Expr:
        if self.peek().kind is TokenKind.LBRACE:
            span = self.peek().span
            qual = self.parse_qual_literal()
            inner = self.parse_annot()
            return Annot(qual, inner, span=span)
        return self.parse_unary()

    def parse_unary(self) -> Expr:
        if self.at_keyword("ref"):
            span = self.advance().span
            return Ref(self.parse_unary(), span=span)
        if self.peek().kind is TokenKind.BANG:
            span = self.advance().span
            return Deref(self.parse_unary(), span=span)
        return self.parse_app()

    _ATOM_STARTS = frozenset({TokenKind.INT, TokenKind.IDENT, TokenKind.LPAREN})

    def parse_app(self) -> Expr:
        expr = self.parse_postfix()
        while self.peek().kind in self._ATOM_STARTS:
            arg = self.parse_postfix()
            expr = App(expr, arg, span=expr.span)
        return expr

    def parse_postfix(self) -> Expr:
        expr = self.parse_atom()
        while self.peek().kind is TokenKind.PIPE:
            span = self.advance().span
            qual = self.parse_qual_literal()
            expr = Assert(expr, qual, span=span)
        return expr

    def parse_atom(self) -> Expr:
        tok = self.peek()
        if tok.kind is TokenKind.INT:
            self.advance()
            return IntLit(int(tok.text), span=tok.span)
        if tok.kind is TokenKind.IDENT:
            self.advance()
            return Var(tok.text, span=tok.span)
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            if self.peek().kind is TokenKind.RPAREN:
                self.advance()
                return UnitLit(span=tok.span)
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return inner
        raise ParseError("expected an expression", tok)


def parse(source: str) -> Expr:
    """Parse a complete program; raises :class:`ParseError` on bad input."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    tok = parser.peek()
    if tok.kind is not TokenKind.EOF:
        raise ParseError("trailing input after expression", tok)
    return expr
