"""Typing derivations for the qualified checking system (Figure 4b).

Inference (:mod:`repro.lam.infer`) answers *whether* a program has a
qualified type; this module reconstructs the *evidence*: a derivation
tree in the paper's syntax-directed rules, with explicit (Sub) steps
wherever subsumption was used.  Each node records the rule name, the
judgment ``A |- e : rho`` with ground qualifiers (the least solution),
and its premises, and the whole tree is locally *checkable*: every (Sub)
edge is validated against the declarative subtype relation and every
qualifier side condition (annotation/assertion bounds, the (Assign')
non-const requirement) is re-verified by :func:`verify`.

This is the artifact the paper's Figure 4 describes directly — useful
for teaching, debugging, and as an independent certificate that the
constraint-based inference produced a real typing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..qual.lattice import QualifierLattice
from ..qual.qtypes import QType, format_qtype
from ..qual.subtype import is_subtype
from .ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    Ref,
    UnitLit,
    Var,
)
from .infer import Inference, QualifiedLanguage, infer


@dataclass
class Derivation:
    """One node of a Figure 4b derivation tree."""

    rule: str
    expr: Expr
    qtype: QType
    premises: list["Derivation"] = field(default_factory=list)
    side_condition: str = ""

    def judgment(self) -> str:
        return f"|- {self.expr} : {format_qtype(self.qtype)}"

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        side = f"   [{self.side_condition}]" if self.side_condition else ""
        lines = [f"{pad}({self.rule}) {self.judgment()}{side}"]
        for premise in self.premises:
            lines.append(premise.render(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def nodes(self) -> Iterator["Derivation"]:
        yield self
        for premise in self.premises:
            yield from premise.nodes()


class DerivationError(Exception):
    """The reconstructed tree failed local validation."""


def _ground(inference: Inference, node: Expr) -> QType:
    qtype = inference.node_qtypes.get(id(node))
    if qtype is None:
        raise DerivationError(f"no type recorded for {node}")
    return inference.least_qtype(qtype)


class _Builder:
    def __init__(self, inference: Inference, language: QualifiedLanguage):
        self.inference = inference
        self.language = language
        self.lattice = language.lattice

    def build(self, e: Expr) -> Derivation:
        qtype = _ground(self.inference, e)
        match e:
            case IntLit():
                return Derivation("Int", e, qtype)
            case UnitLit():
                return Derivation("Unit", e, qtype)
            case Var():
                return Derivation("Var", e, qtype)
            case Lam(body=body):
                return Derivation("Lam", e, qtype, [self.build(body)])
            case App(func=f, arg=a):
                fun = self.build(f)
                arg = self._subsume(self.build(a), fun.qtype.args[0])
                return Derivation("App", e, qtype, [fun, arg])
            case If(cond=c, then=t, other=o):
                cond = self.build(c)
                then = self._subsume(self.build(t), qtype)
                other = self._subsume(self.build(o), qtype)
                return Derivation("If", e, qtype, [cond, then, other])
            case Let(bound=b, body=body):
                rule = "Letv" if id(e) in self.inference.let_schemes else "Let"
                return Derivation(rule, e, qtype, [self.build(b), self.build(body)])
            case Ref(init=i):
                return Derivation("Ref", e, qtype, [self.build(i)])
            case Deref(ref=r):
                return Derivation("Deref", e, qtype, [self.build(r)])
            case Assign(target=t, value=v):
                target = self.build(t)
                value = self._subsume(self.build(v), target.qtype.args[0])
                side = ""
                for name in self.language.assign_restrictions:
                    side = f"target not {name}"
                return Derivation("Assign'", e, qtype, [target, value], side)
            case Annot(expr=inner):
                level = e.qual.resolve(self.lattice)
                premise = self.build(inner)
                return Derivation(
                    "Annot", e, qtype, [premise], f"Q <= {level or '<none>'}"
                )
            case Assert(expr=inner):
                level = e.qual.resolve(self.lattice)
                premise = self.build(inner)
                return Derivation(
                    "Assert", e, qtype, [premise], f"Q <= {level or '<none>'}"
                )
            case _:  # pragma: no cover - exhaustive
                raise DerivationError(f"no rule for {e!r}")

    def _subsume(self, premise: Derivation, expected: QType) -> Derivation:
        """Insert an explicit (Sub) node when the premise's type is not
        syntactically the expected one."""
        target = self.inference.least_qtype(expected)
        if premise.qtype == target:
            return premise
        return Derivation("Sub", premise.expr, target, [premise])


def derive(
    expr: Expr,
    language: QualifiedLanguage,
    env: Mapping[str, QType] | None = None,
    polymorphic: bool = False,
) -> Derivation:
    """Infer and reconstruct the Figure 4b derivation of ``expr``."""
    inference = infer(expr, language, env=env, polymorphic=polymorphic)
    return _Builder(inference, language).build(expr)


def verify(derivation: Derivation, lattice: QualifierLattice) -> None:
    """Independently validate a derivation's local side conditions.

    Checks every (Sub) node against the declarative ground subtype
    relation, every annotation/assertion bound, and every (Assign')
    restriction; raises :class:`DerivationError` on any violation.
    The subtype checker comes from :mod:`repro.qual.subtype`, not from
    the solver — so this is a genuinely independent certificate check.
    """
    for node in derivation.nodes():
        if node.rule == "Sub":
            (premise,) = node.premises
            if not is_subtype(premise.qtype, node.qtype, lattice):
                raise DerivationError(
                    f"invalid subsumption: {format_qtype(premise.qtype)} "
                    f"!<= {format_qtype(node.qtype)}"
                )
        elif node.rule in ("Annot", "Assert"):
            assert isinstance(node.expr, (Annot, Assert))
            level = node.expr.qual.resolve(lattice)
            (premise,) = node.premises
            under = premise.qtype.qual
            if not lattice.leq(under, level):  # type: ignore[arg-type]
                raise DerivationError(
                    f"{node.rule} bound violated: {under} !<= {level}"
                )
        elif node.rule == "Assign'":
            target = node.premises[0]
            for name in ("const",):
                if name in lattice and target.qtype.qual.has(name):  # type: ignore[union-attr]
                    raise DerivationError(
                        f"assignment through {name} reference in derivation"
                    )
