"""High-level checking API for the example language.

Wraps parsing, standard typing, qualified inference, and solving into the
operations a user of the system performs:

* :func:`typecheck` — infer the least qualified type of a program (or
  raise :class:`~repro.lam.infer.QualTypeError`).
* :func:`check_source` — same, starting from concrete syntax.
* :func:`observation1_forward` / :func:`observation1_backward` — the two
  halves of Observation 1 (Section 2.3): a standard-typable program's
  bottom embedding is qualified-typable at the bottom embedding of its
  type, and a qualified-typable program's strip is standard-typable at the
  stripped type.  The property tests instantiate these on random terms.
"""

from __future__ import annotations

from typing import Mapping

from ..qual.poly import QualScheme
from ..qual.qtypes import QType, StdType, embed_bottom, strip
from .ast import Expr, embed_bottom_expr, strip_expr
from .infer import Inference, QualTypeError, QualifiedLanguage, infer
from .parser import parse
from .stdtypes import StdTypeError, infer_std


def typecheck(
    expr: Expr,
    language: QualifiedLanguage,
    env: Mapping[str, QType | QualScheme] | None = None,
    polymorphic: bool = False,
) -> QType:
    """Infer and return the least qualified type of ``expr``."""
    result = infer(expr, language, env=env, polymorphic=polymorphic)
    return result.least_qtype()


def check_source(
    source: str,
    language: QualifiedLanguage,
    env: Mapping[str, QType | QualScheme] | None = None,
    polymorphic: bool = False,
) -> Inference:
    """Parse and infer, returning the full inference result."""
    return infer(parse(source), language, env=env, polymorphic=polymorphic)


def is_well_typed(
    expr: Expr,
    language: QualifiedLanguage,
    env: Mapping[str, QType | QualScheme] | None = None,
    polymorphic: bool = False,
) -> bool:
    """Whether qualified inference succeeds on ``expr``."""
    try:
        infer(expr, language, env=env, polymorphic=polymorphic)
    except QualTypeError:
        return False
    return True


def observation1_forward(
    expr: Expr, language: QualifiedLanguage
) -> tuple[StdType, QType]:
    """If ``expr`` is standard-typable, type its bottom embedding.

    Returns the standard type and the qualified type of ``bottom(expr)``;
    Observation 1 promises the latter exists and strips back to the former.
    Raises :class:`StdTypeError` if ``expr`` has no standard type.
    """
    std = infer_std(expr)
    embedded = embed_bottom_expr(expr)
    result = infer(embedded, language)
    return std.type, result.least_qtype()


def observation1_backward(
    expr: Expr, language: QualifiedLanguage
) -> tuple[QType, StdType]:
    """If ``expr`` (an annotated program) is qualified-typable, type its
    strip.  Returns the qualified type and the standard type of
    ``strip(expr)``; Observation 1 promises the latter exists and equals
    the stripped qualified type."""
    result = infer(expr, language)
    stripped = strip_expr(expr)
    std = infer_std(stripped)
    return result.least_qtype(), std.type
