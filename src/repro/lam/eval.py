"""Small-step operational semantics (paper Figure 5).

Configurations are pairs ``<store, expr>``.  The semantics assumes every
value is qualified — a run-time value is an annotation wrapping a
syntactic value, ``l v``.  Programs need not be written that way: a bare
syntactic value canonicalises to ``bottom v`` in one administrative step
("a program can always be rewritten in this form by inserting bottom
annotations").

Reduction rules (l ranges over lattice elements)::

    <s, R[(l2 v)|l1]>                  -> <s, R[l2 v]>        if l2 <= l1
    <s, R[l1 (l2 v)]>                  -> <s, R[l1 v]>        if l2 <= l1
    <s, R[if (l n) then e2 else e3]>   -> <s, R[e2]>          if n != 0
    <s, R[if (l 0) then e2 else e3]>   -> <s, R[e3]>
    <s, R[(l fn x.e) v]>               -> <s, R[e[x -> v]]>
    <s, R[let x = v in e]>             -> <s, R[e[x -> v]]>
    <s, R[ref v]>                      -> <s[a -> v], R[bottom a]>   a fresh
    <s, R[!(l a)]>                     -> <s, R[s(a)]>        a in dom(s)
    <s, R[(l a) := v]>                 -> <s[a -> v], R[bottom ()]>  a in dom(s)

A failed assertion or annotation check makes the configuration *stuck*;
the type system's soundness theorem says well-typed programs never reach
such a state, which the property-based tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..qual.lattice import LatticeElement, QualifierLattice
from .ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    Loc,
    QualLiteral,
    Ref,
    UnitLit,
    Var,
    is_runtime_value,
    is_syntactic_value,
    substitute,
)


class StuckError(Exception):
    """The configuration is stuck: no reduction applies and the expression
    is not a value.  Well-typed programs never raise this."""

    def __init__(self, message: str, expr: Expr):
        self.expr = expr
        super().__init__(f"{message}: {expr}")


class AssertionFailure(StuckError):
    """A qualifier assertion ``e|l`` failed at run time."""


class AnnotationFailure(StuckError):
    """An annotation ``l e`` found a value above ``l`` at run time."""


class OutOfFuel(Exception):
    """Evaluation exceeded the step budget (the program may diverge)."""


@dataclass
class Store:
    """The mutable store ``s``: locations to run-time values."""

    cells: dict[int, Expr] = field(default_factory=dict)
    _next: int = 0

    def alloc(self, value: Expr) -> int:
        address = self._next
        self._next += 1
        self.cells[address] = value
        return address

    def read(self, address: int) -> Expr:
        return self.cells[address]

    def write(self, address: int, value: Expr) -> None:
        if address not in self.cells:
            raise KeyError(address)
        self.cells[address] = value

    def __contains__(self, address: int) -> bool:
        return address in self.cells

    def __len__(self) -> int:
        return len(self.cells)


def _element_literal(element: LatticeElement) -> QualLiteral:
    return QualLiteral(element.present)


class Evaluator:
    """Small-step evaluator for a fixed qualifier lattice."""

    def __init__(self, lattice: QualifierLattice):
        self.lattice = lattice

    # ------------------------------------------------------------------
    def _resolve(self, literal: QualLiteral) -> LatticeElement:
        return literal.resolve(self.lattice)

    def _is_value(self, e: Expr) -> bool:
        return is_runtime_value(e)

    def step(self, e: Expr, store: Store) -> Expr | None:
        """One reduction step; returns None when ``e`` is a value.

        The store is updated in place (allocation and assignment).
        """
        if self._is_value(e):
            return None
        # Canonicalisation: bare syntactic values (except variables, which
        # are only values under a binder) acquire a bottom annotation.
        if is_syntactic_value(e):
            if isinstance(e, Var):
                raise StuckError(f"free variable {e.name!r}", e)
            return Annot(_element_literal(self.lattice.bottom), e, span=e.span)

        match e:
            case Annot(qual=l1, expr=inner):
                if is_runtime_value(inner):
                    assert isinstance(inner, Annot)
                    outer = self._resolve(l1)
                    under = self._resolve(inner.qual)
                    if not self.lattice.leq(under, outer):
                        raise AnnotationFailure(
                            f"annotation {l1} over value qualified {inner.qual}", e
                        )
                    return Annot(l1, inner.expr, span=e.span)
                return Annot(l1, self._force(inner, store), span=e.span)

            case Assert(expr=inner, qual=l1):
                if is_runtime_value(inner):
                    assert isinstance(inner, Annot)
                    bound = self._resolve(l1)
                    under = self._resolve(inner.qual)
                    if not self.lattice.leq(under, bound):
                        raise AssertionFailure(
                            f"assertion {l1} failed on value qualified {inner.qual}", e
                        )
                    return inner
                return Assert(self._force(inner, store), l1, span=e.span)

            case App(func=f, arg=a):
                if not self._is_value(f):
                    return App(self._force(f, store), a, span=e.span)
                if not self._is_value(a):
                    return App(f, self._force(a, store), span=e.span)
                assert isinstance(f, Annot)
                if not isinstance(f.expr, Lam):
                    raise StuckError("application of a non-function", e)
                return substitute(f.expr.body, f.expr.param, a)

            case If(cond=c, then=t, other=o):
                if not self._is_value(c):
                    return If(self._force(c, store), t, o, span=e.span)
                assert isinstance(c, Annot)
                if not isinstance(c.expr, IntLit):
                    raise StuckError("if-guard is not an integer", e)
                return t if c.expr.value != 0 else o

            case Let(name=n, bound=b, body=body):
                if not self._is_value(b):
                    return Let(n, self._force(b, store), body, span=e.span)
                return substitute(body, n, b)

            case Ref(init=i):
                if not self._is_value(i):
                    return Ref(self._force(i, store), span=e.span)
                address = store.alloc(i)
                return Annot(
                    _element_literal(self.lattice.bottom), Loc(address), span=e.span
                )

            case Deref(ref=r):
                if not self._is_value(r):
                    return Deref(self._force(r, store), span=e.span)
                assert isinstance(r, Annot)
                if not isinstance(r.expr, Loc) or r.expr.address not in store:
                    raise StuckError("dereference of a non-location", e)
                return store.read(r.expr.address)

            case Assign(target=t, value=v):
                if not self._is_value(t):
                    return Assign(self._force(t, store), v, span=e.span)
                if not self._is_value(v):
                    return Assign(t, self._force(v, store), span=e.span)
                assert isinstance(t, Annot)
                if not isinstance(t.expr, Loc) or t.expr.address not in store:
                    raise StuckError("assignment to a non-location", e)
                store.write(t.expr.address, v)
                return Annot(
                    _element_literal(self.lattice.bottom), UnitLit(), span=e.span
                )

            case _:  # pragma: no cover - exhaustive over AST
                raise StuckError("no rule applies", e)

    def _force(self, e: Expr, store: Store) -> Expr:
        """Step a subterm that is known not to be a value."""
        out = self.step(e, store)
        if out is None:  # pragma: no cover - guarded by callers
            raise StuckError("expected a reducible expression", e)
        return out

    # ------------------------------------------------------------------
    def trace(self, e: Expr, store: Store | None = None) -> Iterator[tuple[Expr, Store]]:
        """Yield every configuration from ``e`` to its final value."""
        s = store if store is not None else Store()
        current: Expr | None = e
        while current is not None:
            yield current, s
            current = self.step(current, s)

    def run(self, e: Expr, fuel: int = 100_000) -> tuple[Expr, Store]:
        """Evaluate to a value; raises :class:`OutOfFuel` after ``fuel``
        steps and :class:`StuckError` on a stuck configuration."""
        store = Store()
        current = e
        for _ in range(fuel):
            nxt = self.step(current, store)
            if nxt is None:
                return current, store
            current = nxt
        raise OutOfFuel(f"no value after {fuel} steps")

    def run_to_int(self, e: Expr, fuel: int = 100_000) -> int:
        """Evaluate and project out an integer result."""
        value, _ = self.run(e, fuel)
        assert isinstance(value, Annot)
        if not isinstance(value.expr, IntLit):
            raise StuckError("result is not an integer", value)
        return value.expr.value
