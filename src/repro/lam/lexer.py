"""Lexer for the example language's concrete syntax.

The token set is deliberately small; qualifier constants are written in
braces as the set of present qualifier names (``{const nonzero}``), which
keeps the lexer and parser changes over the base language "minimal" in the
sense of Section 2.5.

Comments run from ``#`` to end of line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .ast import Span


class TokenKind(enum.Enum):
    INT = "int"
    IDENT = "ident"
    KEYWORD = "keyword"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    DOT = "."
    PIPE = "|"
    BANG = "!"
    ASSIGN = ":="
    EQUALS = "="
    EOF = "eof"


KEYWORDS = frozenset({"fn", "let", "in", "ni", "if", "then", "else", "fi", "ref"})


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: Span

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.span}"


class LexError(Exception):
    """Raised on an unrecognised character."""

    def __init__(self, message: str, span: Span):
        self.span = span
        super().__init__(f"{message} at {span}")


def tokenize(source: str) -> list[Token]:
    """Tokenize a whole program; always ends with an EOF token."""
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    n = len(source)

    def span() -> Span:
        return Span(line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        start = span()
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            while j < n and source[j].isdigit():
                j += 1
            text = source[i:j]
            tokens.append(Token(TokenKind.INT, text, start))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start))
            col += j - i
            i = j
            continue
        if ch == ":" and i + 1 < n and source[i + 1] == "=":
            tokens.append(Token(TokenKind.ASSIGN, ":=", start))
            i += 2
            col += 2
            continue
        simple = {
            "(": TokenKind.LPAREN,
            ")": TokenKind.RPAREN,
            "{": TokenKind.LBRACE,
            "}": TokenKind.RBRACE,
            ".": TokenKind.DOT,
            "|": TokenKind.PIPE,
            "!": TokenKind.BANG,
            "=": TokenKind.EQUALS,
        }
        if ch in simple:
            tokens.append(Token(simple[ch], ch, start))
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", start)

    tokens.append(Token(TokenKind.EOF, "", Span(line, col)))
    return tokens
