"""Command-line driver for the example language.

Usage::

    quals-lam check  [--qualifiers const,nonzero] [--poly] FILE
    quals-lam derive [--qualifiers const,nonzero] [--poly] FILE
    quals-lam run    [--qualifiers const,nonzero] FILE
    quals-lam trace  [--qualifiers const,nonzero] FILE

``check`` prints the least qualified type (with constraint count);
``run`` evaluates the program under the Figure 5 semantics and prints the
final value; ``trace`` prints every intermediate configuration.
"""

from __future__ import annotations

import argparse
import sys

from ..qual.qualifiers import make_lattice
from .check import check_source
from .eval import Evaluator, StuckError
from .infer import QualTypeError, QualifiedLanguage, const_language
from .parser import ParseError, parse


def _language(names: list[str]) -> QualifiedLanguage:
    lattice = make_lattice(*names)
    if "const" in lattice:
        return QualifiedLanguage(lattice, assign_restrictions=("const",))
    return QualifiedLanguage(lattice)


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="quals-lam", description=__doc__)
    parser.add_argument("command", choices=["check", "run", "trace", "derive"])
    parser.add_argument("file", help="program file, or - for stdin")
    parser.add_argument(
        "--qualifiers",
        default="const",
        help="comma-separated qualifier names (default: const)",
    )
    parser.add_argument(
        "--poly", action="store_true", help="enable qualifier polymorphism"
    )
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.qualifiers.split(",") if n.strip()]
    try:
        language = _language(names)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    source = _read(args.file)

    if args.command == "derive":
        from .derivation import derive, verify
        from .parser import parse as _parse

        try:
            tree = derive(_parse(source), language, polymorphic=args.poly)
            verify(tree, language.lattice)
        except (ParseError, QualTypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(tree)
        return 0

    if args.command == "check":
        try:
            result = check_source(source, language, polymorphic=args.poly)
        except (ParseError, QualTypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"type: {result.least_qtype()}")
        print(f"constraints: {len(result.constraints)}")
        if result.let_schemes:
            from ..qual.poly import minimize_scheme

            print("polymorphic bindings (simplified for presentation):")
            for scheme in result.let_schemes.values():
                print(f"  {minimize_scheme(scheme, language.lattice)}")
        return 0

    try:
        expr = parse(source)
    except ParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    evaluator = Evaluator(language.lattice)
    if args.command == "trace":
        try:
            for step_index, (config, store) in enumerate(evaluator.trace(expr)):
                print(f"[{step_index:4}] store={len(store)} cells  {config}")
        except StuckError as exc:
            print(f"stuck: {exc}", file=sys.stderr)
            return 1
        return 0

    try:
        value, store = evaluator.run(expr)
    except StuckError as exc:
        print(f"stuck: {exc}", file=sys.stderr)
        return 1
    print(f"value: {value}")
    print(f"store: {len(store)} cells")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
