"""Qualified type inference for the example language (Sections 2.3–3.2).

The implementation follows the paper's factorisation: standard type
inference (unification, :mod:`repro.lam.stdtypes`) runs first and fixes
the *shape* of every node's type; a second pass then spreads those shapes
into qualified types with fresh qualifier variables (the ``sp`` operator)
and generates atomic qualifier constraints according to the rules of
Figure 4b plus the reference rules of Section 2.4:

* subsumption is applied at every flow (function argument, if-branches,
  assignment value, polymorphic variable use);
* ``(SubRef)`` invariance makes stored contents equal across aliases;
* ``(Annot)`` checks ``Q <= l`` and sets the top-level qualifier to ``l``;
* ``(Assert)`` checks ``Q <= l`` and leaves the type unchanged;
* per-qualifier hooks (:class:`QualifiedLanguage`) inject extra
  constraints, e.g. (Assign') demands the assignment target lack const,
  and a nonnull discipline demands dereference targets carry nonnull.

With ``polymorphic=True``, let-bound syntactic values are generalised over
their qualifier variables (Letv) and instantiated fresh at each use
(Var'), exactly the Section 3.2 system; the underlying types stay
monomorphic throughout.

Solving is a single linear-time pass (:mod:`repro.qual.solver`); the
result carries both extreme solutions so callers can classify qualifier
positions or read off the least qualified type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..qual.constraints import Origin, QualConstraint
from ..qual.lattice import LatticeElement, QualifierLattice
from ..qual.poly import QualScheme, generalize, monomorphic
from ..qual.qtypes import (
    QCon,
    QType,
    Qual,
    QualVar,
    REF,
    FUN,
    fresh_qual_var,
    map_quals,
    qual_vars,
    spread,
)
from ..qual.solver import Solution, UnsatisfiableError, solve
from ..qual.subtype import (
    ShapeMismatch,
    SubtypeConstraint,
    decompose,
    unsound_ref_decompose,
)
from ..qual.wellformed import WellFormednessRule
from .ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    Loc,
    Ref,
    Span,
    UnitLit,
    Var,
)
from .stdtypes import StdTypeError, infer_std


class QualTypeError(Exception):
    """Qualifier inference failed.

    Either the underlying program has no standard type, or the qualifier
    constraints are unsatisfiable (e.g. assignment through a const
    reference, or a failed assertion).
    """


@dataclass(frozen=True)
class QualifiedLanguage:
    """A qualifier instantiation of the language: the lattice plus the
    per-qualifier rule modifications of Section 2.4.

    Attributes:
        lattice: the qualifier lattice in force.
        assign_restrictions: qualifier names that must be *absent* on the
            reference being assigned through — ``("const",)`` yields the
            paper's (Assign') rule.
        deref_requirements: negative qualifier names that must be *present*
            on the reference being dereferenced — ``("nonnull",)`` yields
            an lclint-style null-dereference discipline.
        guard_requirements: negative qualifier names required on an
            if-guard's integer (rarely used; provided for symmetry).
        wellformed: well-formedness rules applied to every node's type.
        literal_rule: optional override for the (Int) rule, mapping a
            literal's value to its qualifier lower bound.  The paper's
            default gives every literal bottom; a qualifier designer who
            adds ``nonzero`` modifies the rule so that ``0`` enters the
            system *without* nonzero (see :func:`nonzero_literal_rule`),
            which is what makes the Section 2.4 counterexample a type
            error under the sound (SubRef) rule.
    """

    lattice: QualifierLattice
    assign_restrictions: tuple[str, ...] = ()
    deref_requirements: tuple[str, ...] = ()
    guard_requirements: tuple[str, ...] = ()
    wellformed: tuple[WellFormednessRule, ...] = ()
    literal_rule: "Callable[[int, QualifierLattice], LatticeElement] | None" = None
    #: When set, an if-expression's result qualifier is at least its
    #: guard's — the rule modification binding-time analysis needs (the
    #: branch taken depends on the guard, so a dynamic guard makes the
    #: result dynamic).  Off by default: the paper's base (If) rule does
    #: not connect them.
    guard_flows_to_result: bool = False

    def literal_qual(self, value: int) -> LatticeElement:
        """Qualifier lower bound for an integer literal (rule (Int))."""
        if self.literal_rule is not None:
            return self.literal_rule(value, self.lattice)
        return self.lattice.bottom


def nonzero_literal_rule(value: int, lattice: QualifierLattice) -> LatticeElement:
    """The (Int) rule refined for the nonzero qualifier: a zero literal
    enters the system with nonzero removed; anything else at bottom
    (which, for a negative qualifier, *includes* nonzero)."""
    if value == 0 and "nonzero" in lattice:
        return lattice.bottom.without_qualifier("nonzero")
    return lattice.bottom


def const_language(lattice: QualifierLattice | None = None) -> QualifiedLanguage:
    """The Section 2.4 configuration: const with the (Assign') rule."""
    from ..qual.qualifiers import const_lattice

    lat = lattice if lattice is not None else const_lattice()
    if "const" not in lat:
        raise ValueError("const_language requires a lattice containing 'const'")
    return QualifiedLanguage(lat, assign_restrictions=("const",))


def plain_language(lattice: QualifierLattice) -> QualifiedLanguage:
    """A configuration with no extra qualifier rules (annotations and
    assertions only) — the 'sorted' style of Section 2.3."""
    return QualifiedLanguage(lattice)


@dataclass
class Inference:
    """Result of qualified inference: the type, the constraint system, and
    its extreme solutions."""

    qtype: QType
    constraints: list[QualConstraint]
    solution: Solution
    lattice: QualifierLattice
    #: Qualified type of every node, keyed by ``id(node)``.
    node_qtypes: dict[int, QType] = field(default_factory=dict)
    #: Schemes assigned to let-bound values (polymorphic runs only),
    #: keyed by ``id(let_node)``.
    let_schemes: dict[int, QualScheme] = field(default_factory=dict)

    def least_qtype(self, t: QType | None = None) -> QType:
        """Replace every qualifier variable by its least solution."""
        target = t if t is not None else self.qtype

        def least(q: Qual) -> Qual:
            if isinstance(q, QualVar):
                return self.solution.least_of(q)
            return q

        return map_quals(target, least)

    def greatest_qtype(self, t: QType | None = None) -> QType:
        """Replace every qualifier variable by its greatest solution."""
        target = t if t is not None else self.qtype

        def greatest(q: Qual) -> Qual:
            if isinstance(q, QualVar):
                return self.solution.greatest_of(q)
            return q

        return map_quals(target, greatest)

    def top_qual(self) -> LatticeElement:
        """Least solution of the result's top-level qualifier."""
        q = self.qtype.qual
        if isinstance(q, QualVar):
            return self.solution.least_of(q)
        return q


class _InferencePass:
    def __init__(
        self,
        language: QualifiedLanguage,
        node_std_types: dict[int, object],
        polymorphic: bool,
        store_qtypes: dict[int, QType] | None = None,
        ref_rule: str = "sound",
    ):
        self.language = language
        self.lattice = language.lattice
        self.node_std = node_std_types
        self.polymorphic = polymorphic
        self.constraints: list[QualConstraint] = []
        self.node_qtypes: dict[int, QType] = {}
        self.let_schemes: dict[int, QualScheme] = {}
        self.store_qtypes = store_qtypes or {}
        if ref_rule not in ("sound", "unsound"):
            raise ValueError(f"ref_rule must be 'sound' or 'unsound', got {ref_rule!r}")
        self.ref_rule = ref_rule

    # -- helpers ---------------------------------------------------------
    def origin(self, reason: str, span: Span) -> Origin:
        return Origin(reason, line=span.line or None, column=span.column or None)

    def emit(self, lhs: Qual, rhs: Qual, origin: Origin) -> None:
        self.constraints.append(QualConstraint(lhs, rhs, origin))

    def flow(self, src: QType, dst: QType, origin: Origin) -> None:
        """Subsumption: decompose ``src <= dst`` into atomic constraints.

        The ``unsound`` ref rule (covariant references, the rule the paper
        rejects in Section 2.4) is selectable purely for the ablation
        study; everything else uses the sound (SubRef) equality rule.
        """
        decomposer = decompose if self.ref_rule == "sound" else unsound_ref_decompose
        try:
            self.constraints.extend(decomposer(SubtypeConstraint(src, dst, origin)))
        except ShapeMismatch as exc:
            raise QualTypeError(str(exc)) from exc

    def spread_node(self, e: Expr) -> QType:
        """Spread the node's standard type with fresh qualifier variables."""
        std = self.node_std.get(id(e))
        if std is None:  # pragma: no cover - standard pass covers all nodes
            raise QualTypeError(f"internal: node without standard type: {e}")
        qtype = spread(std)  # type: ignore[arg-type]
        self.apply_wellformed(qtype, e.span)
        return qtype

    def apply_wellformed(self, qtype: QType, span: Span) -> None:
        if not self.language.wellformed:
            return
        from ..qual.wellformed import generate

        origin = self.origin("well-formedness", span)
        self.constraints.extend(generate(qtype, self.language.wellformed, self.lattice, origin))

    def record(self, e: Expr, qtype: QType) -> QType:
        self.node_qtypes[id(e)] = qtype
        return qtype

    def expect_fun(self, qtype: QType, span: Span) -> tuple[Qual, QType, QType]:
        if qtype.constructor is not FUN:
            raise QualTypeError(f"expected a function type at {span}, got {qtype}")
        dom, rng = qtype.args
        return qtype.qual, dom, rng

    def expect_ref(self, qtype: QType, span: Span) -> tuple[Qual, QType]:
        if qtype.constructor is not REF:
            raise QualTypeError(f"expected a ref type at {span}, got {qtype}")
        return qtype.qual, qtype.args[0]

    def resolve_literal(self, e: Annot | Assert) -> LatticeElement:
        try:
            return e.qual.resolve(self.lattice)
        except Exception as exc:
            raise QualTypeError(
                f"unknown qualifier in {e.qual} at {e.span}: {exc}"
            ) from exc

    # -- the syntax-directed rules ----------------------------------------
    def visit(self, e: Expr, scope: dict[str, QualScheme]) -> QType:
        match e:
            case IntLit(value=v):
                qtype = self.spread_node(e)
                # (Int): literals enter at the language's literal qualifier
                # (bottom by default); the fresh variable is only bounded
                # below, leaving room for subsumption.
                self.emit(
                    self.language.literal_qual(v),
                    qtype.qual,
                    self.origin("integer literal", e.span),
                )
                return self.record(e, qtype)

            case UnitLit():
                return self.record(e, self.spread_node(e))

            case Var(name=n):
                if n not in scope:
                    raise QualTypeError(f"unbound variable {n!r} at {e.span}")
                scheme = scope[n]
                if scheme.is_monomorphic:
                    return self.record(e, scheme.body)
                # (Var'): instantiate with fresh qualifier variables and
                # re-emit the scheme's constraints under the renaming.
                body, carried = scheme.instantiate()
                self.constraints.extend(carried)
                return self.record(e, body)

            case Loc(address=a):
                if a not in self.store_qtypes:
                    raise QualTypeError(f"unknown store location {a}")
                qual = fresh_qual_var()
                qtype = QType(qual, QCon(REF, (self.store_qtypes[a],)))
                return self.record(e, qtype)

            case Lam(param=p, body=b):
                qtype = self.spread_node(e)
                _, dom, rng = self.expect_fun(qtype, e.span)
                body_t = self.visit(b, {**scope, p: monomorphic(dom)})
                self.flow(body_t, rng, self.origin("function body", e.span))
                return self.record(e, qtype)

            case App(func=f, arg=a):
                fun_t = self.visit(f, scope)
                arg_t = self.visit(a, scope)
                _, dom, rng = self.expect_fun(fun_t, e.span)
                self.flow(arg_t, dom, self.origin("function argument", a.span or e.span))
                return self.record(e, rng)

            case If(cond=c, then=t, other=o):
                cond_t = self.visit(c, scope)
                for name in self.language.guard_requirements:
                    self.emit(
                        cond_t.qual,
                        self.lattice.assertion_bound(name),
                        self.origin(f"if-guard must be {name}", c.span or e.span),
                    )
                then_t = self.visit(t, scope)
                other_t = self.visit(o, scope)
                result = self.spread_node(e)
                self.flow(then_t, result, self.origin("if-branch", t.span or e.span))
                self.flow(other_t, result, self.origin("else-branch", o.span or e.span))
                if self.language.guard_flows_to_result:
                    self.emit(
                        cond_t.qual,
                        result.qual,
                        self.origin("guard qualifier flows to if-result", e.span),
                    )
                return self.record(e, result)

            case Let(name=n, bound=b, body=body):
                mark = len(self.constraints)
                bound_t = self.visit(b, scope)
                if self.polymorphic and _is_generalizable(b):
                    # (Letv): quantify variables not free in the
                    # environment, carrying the constraints they touch.
                    env_vars: set[QualVar] = set()
                    for s in scope.values():
                        env_vars |= s.free_qual_vars()
                    local = self.constraints[mark:]
                    scheme = generalize(bound_t, local, env_vars)
                    self.let_schemes[id(e)] = scheme
                else:
                    scheme = monomorphic(bound_t)
                result = self.visit(body, {**scope, n: scheme})
                return self.record(e, result)

            case Ref(init=i):
                init_t = self.visit(i, scope)
                # (Ref): the cell's contents type is chosen fresh and the
                # initializer flows into it.  Reusing init_t directly
                # would pin the contents to the initializer's exact type
                # and lose the declarative system's subsumption point —
                # ``ref ({} 8)`` could never meet ``ref ({const} 7)``
                # across an if-join, breaking subject reduction for
                # configurations the evaluator canonicalises with bottom
                # annotations.
                qtype = self.spread_node(e)
                _, contents = self.expect_ref(qtype, e.span)
                self.flow(
                    init_t, contents, self.origin("ref initializer", i.span or e.span)
                )
                return self.record(e, qtype)

            case Deref(ref=r):
                ref_t = self.visit(r, scope)
                ref_qual, contents = self.expect_ref(ref_t, e.span)
                for name in self.language.deref_requirements:
                    self.emit(
                        ref_qual,
                        self.lattice.assertion_bound(name),
                        self.origin(f"dereference requires {name}", e.span),
                    )
                return self.record(e, contents)

            case Assign(target=t, value=v):
                target_t = self.visit(t, scope)
                value_t = self.visit(v, scope)
                ref_qual, contents = self.expect_ref(target_t, e.span)
                # (Assign'): the reference written through must lack each
                # restricted qualifier (const).
                for name in self.language.assign_restrictions:
                    self.emit(
                        ref_qual,
                        self.lattice.negate(name),
                        self.origin(f"assignment target must not be {name}", e.span),
                    )
                self.flow(value_t, contents, self.origin("assigned value", v.span or e.span))
                return self.record(e, self.spread_node(e))

            case Annot(expr=inner):
                inner_t = self.visit(inner, scope)
                level = self.resolve_literal(e)
                # (Annot): Q <= l, and the result's qualifier becomes l.
                self.emit(inner_t.qual, level, self.origin(f"annotation {e.qual}", e.span))
                return self.record(e, inner_t.with_qual(level))

            case Assert(expr=inner):
                inner_t = self.visit(inner, scope)
                level = self.resolve_literal(e)
                # (Assert): Q <= l; type unchanged.
                self.emit(inner_t.qual, level, self.origin(f"assertion {e.qual}", e.span))
                return self.record(e, inner_t)

            case _:  # pragma: no cover - exhaustive over AST
                raise TypeError(f"unknown expression {e!r}")


def _is_generalizable(e: Expr) -> bool:
    """The value restriction: only syntactic values generalise, looking
    through annotations and assertions."""
    match e:
        case Var() | IntLit() | UnitLit() | Lam():
            return True
        case Annot(expr=inner) | Assert(expr=inner):
            return _is_generalizable(inner)
        case _:
            return False


def infer(
    expr: Expr,
    language: QualifiedLanguage,
    env: Mapping[str, QType | QualScheme] | None = None,
    polymorphic: bool = False,
    store_qtypes: dict[int, QType] | None = None,
    ref_rule: str = "sound",
) -> Inference:
    """Run qualified type inference.

    Args:
        expr: the program.
        language: the qualifier configuration (lattice + rule hooks).
        env: qualified types (or schemes) for free variables.
        polymorphic: enable the Section 3.2 (Letv)/(Var') rules.
        store_qtypes: contents types for store locations, for typing
            run-time configurations in subject-reduction tests.
        ref_rule: "sound" (the (SubRef) equality rule) or "unsound" (the
            covariant rule the paper rejects) — ablation only.

    Returns an :class:`Inference`; raises :class:`QualTypeError` if the
    program has no standard type or the qualifier constraints are
    unsatisfiable.
    """
    from ..qual.qtypes import strip as strip_qtype

    scope: dict[str, QualScheme] = {}
    std_env = {}
    for name, entry in (env or {}).items():
        scheme = entry if isinstance(entry, QualScheme) else monomorphic(entry)
        scope[name] = scheme
        std_env[name] = strip_qtype(scheme.body)

    std_store = None
    if store_qtypes:
        std_store = {a: strip_qtype(t) for a, t in store_qtypes.items()}

    try:
        std = infer_std(expr, std_env, std_store)
    except StdTypeError as exc:
        raise QualTypeError(f"standard type error: {exc}") from exc

    p = _InferencePass(language, std.node_types, polymorphic, store_qtypes, ref_rule)
    qtype = p.visit(expr, scope)

    mentioned = qual_vars(qtype)
    try:
        solution = solve(p.constraints, language.lattice, extra_vars=mentioned)
    except UnsatisfiableError as exc:
        raise QualTypeError(str(exc)) from exc

    return Inference(
        qtype=qtype,
        constraints=p.constraints,
        solution=solution,
        lattice=language.lattice,
        node_qtypes=p.node_qtypes,
        let_schemes=p.let_schemes,
    )
