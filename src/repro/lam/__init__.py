"""The paper's example language (Figures 1, 4, 5; Sections 2–3).

* :mod:`repro.lam.ast` — abstract syntax, values, substitution, and the
  strip / bottom-embedding program translations.
* :mod:`repro.lam.lexer`, :mod:`repro.lam.parser` — concrete syntax.
* :mod:`repro.lam.stdtypes` — standard simply-typed inference
  (unification), the substrate of the factorised qualifier phase.
* :mod:`repro.lam.infer` — qualified type inference, monomorphic and
  polymorphic, with per-qualifier rule hooks.
* :mod:`repro.lam.check` — high-level checking API and Observation 1.
* :mod:`repro.lam.eval` — the Figure 5 small-step operational semantics.
* :mod:`repro.lam.derivation` — Figure 4b derivation trees, reconstructed
  from inference results and independently verifiable.
* :mod:`repro.lam.cli` — the ``quals-lam`` command-line driver.
"""

from .ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    Loc,
    QualLiteral,
    Ref,
    Span,
    UnitLit,
    Var,
    embed_bottom_expr,
    free_vars,
    is_runtime_value,
    is_syntactic_value,
    qual_literal,
    strip_expr,
    substitute,
    walk,
)
from .lexer import LexError, Token, TokenKind, tokenize
from .parser import ParseError, parse
from .stdtypes import StdInference, StdTypeError, infer_std
from .infer import (
    Inference,
    QualTypeError,
    QualifiedLanguage,
    const_language,
    infer,
    plain_language,
)
from .check import (
    check_source,
    is_well_typed,
    observation1_backward,
    observation1_forward,
    typecheck,
)
from .eval import (
    AnnotationFailure,
    AssertionFailure,
    Evaluator,
    OutOfFuel,
    Store,
    StuckError,
)
from .derivation import Derivation, DerivationError, derive, verify

__all__ = [name for name in dir() if not name.startswith("_")]
