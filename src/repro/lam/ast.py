"""Abstract syntax for the paper's example language (Figures 1 and 5).

The language is a call-by-value lambda calculus with integers, ``if``,
``let``, ML-style updateable references (Section 2.4), and the two
qualifier constructs of Section 2.2:

* **annotation** ``l e`` — raises ``e``'s top-level qualifier to ``l``
  (checking it was at most ``l`` already, per rule (Annot));
* **assertion** ``e|l`` — checks ``e``'s top-level qualifier is at most
  ``l``, per rule (Assert).

Annotation and assertion constants are recorded syntactically as the set
of qualifier names present (concrete syntax ``{const nonzero}``) and only
resolved to lattice elements once a lattice is chosen, so the same AST can
be typed against different qualifier sets.

The module also provides the Section 2.3 program translations: ``strip``
(remove all annotations/assertions) and ``embed_bottom`` (insert bottom
annotations, the expression half of Observation 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from ..qual.lattice import LatticeElement, QualifierLattice


@dataclass(frozen=True)
class Span:
    """Source location (1-based line/column) for diagnostics."""

    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


NO_SPAN = Span()


def _operand(e: "Expr") -> str:
    """Render a subexpression for an operand position: binder forms
    (if/let) print bare and must be parenthesised to re-parse there."""
    if isinstance(e, (If, Let)):
        return f"({e})"
    return str(e)


@dataclass(frozen=True)
class QualLiteral:
    """A syntactic qualifier constant: the set of qualifier names present.

    ``resolve`` turns it into a :class:`LatticeElement` of a concrete
    lattice; names absent from the lattice are an error at resolution time,
    not parse time.
    """

    names: frozenset[str]

    def resolve(self, lattice: QualifierLattice) -> LatticeElement:
        return lattice.element(*self.names)

    def __str__(self) -> str:
        return "{" + " ".join(sorted(self.names)) + "}"


BOTTOM_LITERAL = QualLiteral(frozenset())


def qual_literal(*names: str) -> QualLiteral:
    return QualLiteral(frozenset(names))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expressions.  Subclasses are immutable records."""

    span: Span = field(default=NO_SPAN, kw_only=True, compare=False)


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class UnitLit(Expr):
    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Lam(Expr):
    param: str
    body: Expr

    def __str__(self) -> str:
        return f"(fn {self.param}. {self.body})"


@dataclass(frozen=True)
class App(Expr):
    func: Expr
    arg: Expr

    def __str__(self) -> str:
        return f"({_operand(self.func)} {_operand(self.arg)})"


@dataclass(frozen=True)
class If(Expr):
    cond: Expr
    then: Expr
    other: Expr

    def __str__(self) -> str:
        return f"if {self.cond} then {self.then} else {self.other} fi"


@dataclass(frozen=True)
class Let(Expr):
    name: str
    bound: Expr
    body: Expr

    def __str__(self) -> str:
        return f"let {self.name} = {self.bound} in {self.body} ni"


@dataclass(frozen=True)
class Ref(Expr):
    init: Expr

    def __str__(self) -> str:
        return f"(ref {_operand(self.init)})"


@dataclass(frozen=True)
class Deref(Expr):
    ref: Expr

    def __str__(self) -> str:
        return f"(!{_operand(self.ref)})"


@dataclass(frozen=True)
class Assign(Expr):
    target: Expr
    value: Expr

    def __str__(self) -> str:
        return f"({_operand(self.target)} := {_operand(self.value)})"


@dataclass(frozen=True)
class Annot(Expr):
    """Qualifier annotation ``l e``."""

    qual: QualLiteral
    expr: Expr

    def __str__(self) -> str:
        return f"({self.qual} {_operand(self.expr)})"


@dataclass(frozen=True)
class Assert(Expr):
    """Qualifier assertion ``e|l``."""

    expr: Expr
    qual: QualLiteral

    def __str__(self) -> str:
        return f"({_operand(self.expr)}|{self.qual})"


# A store location; only produced by evaluation (Figure 5), never by the
# parser.  It appears in the AST type so the small-step semantics can be
# expressed as expression rewriting, exactly as the paper does.
@dataclass(frozen=True)
class Loc(Expr):
    address: int

    def __str__(self) -> str:
        return f"<loc {self.address}>"


Value = Union[IntLit, UnitLit, Lam, Loc, Var]


def is_syntactic_value(e: Expr) -> bool:
    """Syntactic values ``v`` of Figure 1/Section 2.4 (plus locations).

    An annotated value ``l v`` is *not* itself a syntactic value in the
    grammar, but the semantics treats ``l v`` as the canonical run-time
    value form; :func:`is_runtime_value` covers that case.
    """
    return isinstance(e, (IntLit, UnitLit, Lam, Loc, Var))


def is_runtime_value(e: Expr) -> bool:
    """Run-time values: an annotation wrapping a syntactic value."""
    return isinstance(e, Annot) and is_syntactic_value(e.expr)


def children(e: Expr) -> tuple[Expr, ...]:
    """Immediate subexpressions, in evaluation order."""
    match e:
        case App(func=f, arg=a):
            return (f, a)
        case If(cond=c, then=t, other=o):
            return (c, t, o)
        case Let(bound=b, body=body):
            return (b, body)
        case Lam(body=b):
            return (b,)
        case Ref(init=i):
            return (i,)
        case Deref(ref=r):
            return (r,)
        case Assign(target=t, value=v):
            return (t, v)
        case Annot(expr=inner):
            return (inner,)
        case Assert(expr=inner):
            return (inner,)
        case _:
            return ()


def walk(e: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield e
    for child in children(e):
        yield from walk(child)


def free_vars(e: Expr) -> set[str]:
    """Free program variables of an expression."""
    match e:
        case Var(name=n):
            return {n}
        case Lam(param=p, body=b):
            return free_vars(b) - {p}
        case Let(name=n, bound=b, body=body):
            return free_vars(b) | (free_vars(body) - {n})
        case _:
            out: set[str] = set()
            for child in children(e):
                out |= free_vars(child)
            return out


_subst_counter = 0


def _fresh_name(base: str) -> str:
    global _subst_counter
    _subst_counter += 1
    return f"{base}#{_subst_counter}"


def substitute(e: Expr, name: str, value: Expr) -> Expr:
    """Capture-avoiding substitution ``e[name -> value]``."""
    match e:
        case Var(name=n):
            return value if n == name else e
        case IntLit() | UnitLit() | Loc():
            return e
        case Lam(param=p, body=b):
            if p == name:
                return e
            if p in free_vars(value):
                fresh = _fresh_name(p)
                b = substitute(b, p, Var(fresh))
                return Lam(fresh, substitute(b, name, value), span=e.span)
            return Lam(p, substitute(b, name, value), span=e.span)
        case Let(name=n, bound=b, body=body):
            new_bound = substitute(b, name, value)
            if n == name:
                return Let(n, new_bound, body, span=e.span)
            if n in free_vars(value):
                fresh = _fresh_name(n)
                body = substitute(body, n, Var(fresh))
                return Let(fresh, new_bound, substitute(body, name, value), span=e.span)
            return Let(n, new_bound, substitute(body, name, value), span=e.span)
        case App(func=f, arg=a):
            return App(substitute(f, name, value), substitute(a, name, value), span=e.span)
        case If(cond=c, then=t, other=o):
            return If(
                substitute(c, name, value),
                substitute(t, name, value),
                substitute(o, name, value),
                span=e.span,
            )
        case Ref(init=i):
            return Ref(substitute(i, name, value), span=e.span)
        case Deref(ref=r):
            return Deref(substitute(r, name, value), span=e.span)
        case Assign(target=t, value=v):
            return Assign(substitute(t, name, value), substitute(v, name, value), span=e.span)
        case Annot(qual=q, expr=inner):
            return Annot(q, substitute(inner, name, value), span=e.span)
        case Assert(expr=inner, qual=q):
            return Assert(substitute(inner, name, value), q, span=e.span)
        case _:  # pragma: no cover - exhaustive over AST
            raise TypeError(f"unknown expression {e!r}")


# ---------------------------------------------------------------------------
# The Section 2.3 expression translations
# ---------------------------------------------------------------------------


def strip_expr(e: Expr) -> Expr:
    """``strip(e)``: remove every annotation and assertion."""
    match e:
        case Annot(expr=inner):
            return strip_expr(inner)
        case Assert(expr=inner):
            return strip_expr(inner)
        case Var() | IntLit() | UnitLit() | Loc():
            return e
        case Lam(param=p, body=b):
            return Lam(p, strip_expr(b), span=e.span)
        case App(func=f, arg=a):
            return App(strip_expr(f), strip_expr(a), span=e.span)
        case If(cond=c, then=t, other=o):
            return If(strip_expr(c), strip_expr(t), strip_expr(o), span=e.span)
        case Let(name=n, bound=b, body=body):
            return Let(n, strip_expr(b), strip_expr(body), span=e.span)
        case Ref(init=i):
            return Ref(strip_expr(i), span=e.span)
        case Deref(ref=r):
            return Deref(strip_expr(r), span=e.span)
        case Assign(target=t, value=v):
            return Assign(strip_expr(t), strip_expr(v), span=e.span)
        case _:  # pragma: no cover - exhaustive over AST
            raise TypeError(f"unknown expression {e!r}")


def embed_bottom_expr(e: Expr) -> Expr:
    """``bottom(e)``: the annotated-language embedding with only bottom
    annotations on syntactic values and no assertions (Observation 1)."""
    match e:
        case Var() | IntLit() | UnitLit() | Loc():
            return Annot(BOTTOM_LITERAL, e, span=e.span) if not isinstance(e, Var) else e
        case Lam(param=p, body=b):
            return Annot(BOTTOM_LITERAL, Lam(p, embed_bottom_expr(b), span=e.span), span=e.span)
        case App(func=f, arg=a):
            return App(embed_bottom_expr(f), embed_bottom_expr(a), span=e.span)
        case If(cond=c, then=t, other=o):
            return If(
                embed_bottom_expr(c), embed_bottom_expr(t), embed_bottom_expr(o), span=e.span
            )
        case Let(name=n, bound=b, body=body):
            return Let(n, embed_bottom_expr(b), embed_bottom_expr(body), span=e.span)
        case Ref(init=i):
            return Ref(embed_bottom_expr(i), span=e.span)
        case Deref(ref=r):
            return Deref(embed_bottom_expr(r), span=e.span)
        case Assign(target=t, value=v):
            return Assign(embed_bottom_expr(t), embed_bottom_expr(v), span=e.span)
        case Annot() | Assert():
            raise ValueError("embed_bottom_expr expects an unannotated program")
        case _:  # pragma: no cover - exhaustive over AST
            raise TypeError(f"unknown expression {e!r}")
