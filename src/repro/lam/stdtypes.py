"""Standard (unqualified) type inference for the example language.

This is the substrate the qualified system refines: the simply-typed
lambda calculus with unit and ML-style references, inferred by unification
(Algorithm J).  Qualifier annotations and assertions are transparent at
this level — ``strip`` of a qualified program types exactly like the
qualified program's shape, which is what makes the factorisation of
Section 3.1 work: we run standard inference first, then compute qualifiers
over the resulting shapes in a separate phase.

The result records a standard type for *every* AST node (keyed by node
identity), which the qualified phase spreads into qualified types with
fresh qualifier variables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..qual.qtypes import (
    STD_INT,
    STD_UNIT,
    StdCon,
    StdType,
    StdVar,
    std_fun,
    std_ref,
)
from .ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    Loc,
    Ref,
    UnitLit,
    Var,
)


class StdTypeError(Exception):
    """The underlying (unqualified) program does not typecheck."""


class _Unifier:
    """Substitution-based unification over standard types."""

    def __init__(self) -> None:
        self._subst: dict[str, StdType] = {}
        self._fresh = itertools.count()

    def fresh(self) -> StdVar:
        return StdVar(f"t{next(self._fresh)}")

    def resolve(self, t: StdType) -> StdType:
        """Follow variable bindings one level (with path compression)."""
        seen = []
        while isinstance(t, StdVar) and t.name in self._subst:
            seen.append(t.name)
            t = self._subst[t.name]
        for name in seen:
            self._subst[name] = t
        return t

    def resolve_deep(self, t: StdType) -> StdType:
        t = self.resolve(t)
        if isinstance(t, StdVar):
            return t
        return StdCon(t.con, tuple(self.resolve_deep(a) for a in t.args))

    def occurs(self, name: str, t: StdType) -> bool:
        t = self.resolve(t)
        if isinstance(t, StdVar):
            return t.name == name
        return any(self.occurs(name, a) for a in t.args)

    def unify(self, a: StdType, b: StdType, context: str) -> None:
        a, b = self.resolve(a), self.resolve(b)
        if isinstance(a, StdVar) and isinstance(b, StdVar) and a.name == b.name:
            return
        if isinstance(a, StdVar):
            if self.occurs(a.name, b):
                raise StdTypeError(f"infinite type: {a} = {self.resolve_deep(b)} ({context})")
            self._subst[a.name] = b
            return
        if isinstance(b, StdVar):
            self.unify(b, a, context)
            return
        if a.con != b.con:
            raise StdTypeError(
                f"type mismatch: {self.resolve_deep(a)} vs {self.resolve_deep(b)} ({context})"
            )
        for x, y in zip(a.args, b.args):
            self.unify(x, y, context)


@dataclass
class StdInference:
    """Result of standard inference over one expression tree."""

    type: StdType
    #: Standard type of every node, keyed by ``id(node)``.  The expression
    #: tree must be kept alive while this mapping is in use.
    node_types: dict[int, StdType] = field(default_factory=dict)


def infer_std(
    expr: Expr,
    env: dict[str, StdType] | None = None,
    store_env: dict[int, StdType] | None = None,
) -> StdInference:
    """Infer the standard type of ``expr``.

    ``env`` gives the types of free program variables; ``store_env`` gives
    contents types for store locations (used when typing run-time
    configurations in the subject-reduction tests).  Raises
    :class:`StdTypeError` if the program has no simple type.
    """
    unifier = _Unifier()
    node_types: dict[int, StdType] = {}
    base_env = dict(env or {})
    locations = store_env or {}

    def visit(e: Expr, scope: dict[str, StdType]) -> StdType:
        t = _visit(e, scope)
        node_types[id(e)] = t
        return t

    def _visit(e: Expr, scope: dict[str, StdType]) -> StdType:
        match e:
            case IntLit():
                return STD_INT
            case UnitLit():
                return STD_UNIT
            case Var(name=n):
                if n not in scope:
                    raise StdTypeError(f"unbound variable {n!r} at {e.span}")
                return scope[n]
            case Loc(address=a):
                if a not in locations:
                    raise StdTypeError(f"unknown store location {a}")
                return std_ref(locations[a])
            case Lam(param=p, body=b):
                pt = unifier.fresh()
                bt = visit(b, {**scope, p: pt})
                return std_fun(pt, bt)
            case App(func=f, arg=a):
                ft = visit(f, scope)
                at = visit(a, scope)
                rt = unifier.fresh()
                unifier.unify(ft, std_fun(at, rt), f"application at {e.span}")
                return rt
            case If(cond=c, then=t, other=o):
                ct = visit(c, scope)
                unifier.unify(ct, STD_INT, f"if-guard at {e.span}")
                tt = visit(t, scope)
                ot = visit(o, scope)
                unifier.unify(tt, ot, f"if-branches at {e.span}")
                return tt
            case Let(name=n, bound=b, body=body):
                bt = visit(b, scope)
                return visit(body, {**scope, n: bt})
            case Ref(init=i):
                return std_ref(visit(i, scope))
            case Deref(ref=r):
                rt = visit(r, scope)
                contents = unifier.fresh()
                unifier.unify(rt, std_ref(contents), f"dereference at {e.span}")
                return contents
            case Assign(target=t, value=v):
                tt = visit(t, scope)
                vt = visit(v, scope)
                unifier.unify(tt, std_ref(vt), f"assignment at {e.span}")
                return STD_UNIT
            case Annot(expr=inner):
                return visit(inner, scope)
            case Assert(expr=inner):
                return visit(inner, scope)
            case _:  # pragma: no cover - exhaustive over AST
                raise TypeError(f"unknown expression {e!r}")

    result = visit(expr, base_env)
    resolved = {k: unifier.resolve_deep(t) for k, t in node_types.items()}
    return StdInference(unifier.resolve_deep(result), resolved)
