"""Qualifier lattices (paper Section 2, Definitions 1 and 2).

A *type qualifier* ``q`` is **positive** if ``tau <= q tau`` for every
standard type ``tau`` (e.g. ``const``: a non-const l-value may be promoted to
a const l-value) and **negative** if ``q tau <= tau`` (e.g. ``nonzero``: a
known-nonzero integer may be used wherever any integer is expected).

Each positive qualifier ``q`` induces the two-point lattice
``absent(q) <= q`` and each negative qualifier the two-point lattice
``q <= absent(q)``.  A *qualifier lattice* over qualifiers ``q1 .. qn`` is
the product ``L = L_q1 x ... x L_qn``; its elements are the sets of
qualifiers that may decorate a single level of a type.  Moving *up* the
lattice adds positive qualifiers and removes negative ones (Figure 2).

This module implements:

* :class:`Qualifier` — a named qualifier with a polarity.
* :class:`QualifierLattice` — the product lattice with ``leq``, ``meet``,
  ``join``, ``bottom``, ``top``, the ``not q`` element :meth:`QualifierLattice.negate`
  used by rules such as (Assign'), and enumeration/pretty-printing helpers.
* :class:`LatticeElement` — an immutable, *interned* element of a
  particular lattice.

The lattice is deliberately independent of any type structure: the rest of
the framework (``repro.qual.qtypes``, ``repro.qual.solver``) treats lattice
elements as opaque constants ordered by :meth:`QualifierLattice.leq`.

Performance architecture
------------------------

Solving is linear time only if the per-constraint lattice operations are
O(1), so internally every element is an integer **bitmask** over the
lattice's canonical qualifier ordering (sorted names).  With ``pos`` and
``neg`` the masks of the positive/negative qualifiers:

* ``a <= b``    iff  ``(a & ~b & pos) | (b & ~a & neg) == 0``
* ``join(a,b)``  =   ``((a | b) & pos) | (a & b & neg)``
* ``meet(a,b)``  =   ``((a & b) & pos) | ((a | b) & neg)``

Elements are **hash-consed** per lattice: constructing an element with a
mask that already exists returns the existing object, so equality between
elements of the same lattice is identity, hashes are computed once, and
``__post_init__``-style validation runs once per distinct element.  The
public frozenset-based API (``present``, ``has``, construction from
names) is unchanged.  The mask-level entry points (:meth:`QualifierLattice.join_mask`,
:meth:`QualifierLattice.meet_mask`, :meth:`QualifierLattice.leq_mask`,
:meth:`QualifierLattice.from_mask`) let the constraint solver propagate
over plain integers and only rebuild elements at the boundary.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator


class Polarity(enum.Enum):
    """Whether a qualifier sits above or below the unqualified type.

    ``POSITIVE``: ``tau <= q tau`` (const, dynamic, tainted, ...).
    ``NEGATIVE``: ``q tau <= tau`` (nonzero, nonnull, sorted, local, ...).
    """

    POSITIVE = "positive"
    NEGATIVE = "negative"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polarity.{self.name}"


@dataclass(frozen=True, order=True)
class Qualifier:
    """A single user-defined type qualifier.

    Attributes:
        name: the surface syntax of the qualifier (e.g. ``"const"``).
        polarity: whether the qualifier is positive or negative.
    """

    name: str
    polarity: Polarity

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid qualifier name: {self.name!r}")

    @property
    def positive(self) -> bool:
        return self.polarity is Polarity.POSITIVE

    @property
    def negative(self) -> bool:
        return self.polarity is Polarity.NEGATIVE

    def __str__(self) -> str:
        return self.name


def positive(name: str) -> Qualifier:
    """Construct a positive qualifier (``tau <= q tau``)."""
    return Qualifier(name, Polarity.POSITIVE)


def negative(name: str) -> Qualifier:
    """Construct a negative qualifier (``q tau <= tau``)."""
    return Qualifier(name, Polarity.NEGATIVE)


class LatticeError(Exception):
    """Raised for ill-formed lattice operations (unknown qualifiers, or
    mixing elements of different lattices)."""


class LatticeElement:
    """An element of a :class:`QualifierLattice`.

    The element is represented by the *present* qualifiers: the set of
    qualifier names whose two-point lattice coordinate is the named point
    (rather than the anonymous ``absent`` point).  So for the lattice over
    ``{const (+), nonzero (-)}``:

    * ``{}`` is the element with no const and no nonzero,
    * ``{"const", "nonzero"}`` has both.

    Ordering: a positive qualifier present moves the element *up*; a
    negative qualifier present moves it *down*.  Bottom therefore has no
    positive qualifiers and all negative ones; top has all positive
    qualifiers and no negative ones.

    Elements are immutable and hashable so they can be used as constraint
    constants and dictionary keys.  They are also *interned* per lattice:
    ``LatticeElement(lat, s)`` returns the one canonical object for the
    bitmask of ``s``, so elements of the same lattice compare equal iff
    they are the same object and validation runs once per distinct
    element.
    """

    __slots__ = ("lattice", "present", "mask", "_hash")

    lattice: "QualifierLattice"
    present: frozenset[str]
    #: Bitmask of ``present`` in the lattice's canonical qualifier order.
    mask: int

    def __new__(
        cls, lattice: "QualifierLattice", present: Iterable[str] = frozenset()
    ) -> "LatticeElement":
        if not isinstance(present, frozenset):
            present = frozenset(present)
        mask = lattice._mask_of(present)
        cached = lattice._interned.get(mask)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "lattice", lattice)
        object.__setattr__(self, "present", present)
        object.__setattr__(self, "mask", mask)
        object.__setattr__(self, "_hash", hash((lattice, present)))
        lattice._interned[mask] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"LatticeElement is immutable; cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"LatticeElement is immutable; cannot delete {name!r}")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, LatticeElement):
            return NotImplemented
        # Distinct-but-equal lattices (structural lattice equality) keep
        # separate intern tables, so fall back to structural comparison.
        return self.mask == other.mask and self.lattice == other.lattice

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Re-intern on unpickle so the identity invariant survives.
        return (LatticeElement, (self.lattice, self.present))

    def has(self, qualifier: str | Qualifier) -> bool:
        """Whether the named qualifier is present on this element."""
        name = qualifier.name if isinstance(qualifier, Qualifier) else qualifier
        bit = self.lattice._bit.get(name)
        if bit is None:
            raise LatticeError(f"unknown qualifier {name!r} for lattice {self.lattice}")
        return bool(self.mask & bit)

    def with_qualifier(self, qualifier: str | Qualifier) -> "LatticeElement":
        """This element with the named qualifier added (present)."""
        name = qualifier.name if isinstance(qualifier, Qualifier) else qualifier
        bit = self.lattice._bit.get(name)
        if bit is None:
            raise LatticeError(f"unknown qualifier {name!r} for lattice {self.lattice}")
        return self.lattice.from_mask(self.mask | bit)

    def without_qualifier(self, qualifier: str | Qualifier) -> "LatticeElement":
        """This element with the named qualifier removed (absent)."""
        name = qualifier.name if isinstance(qualifier, Qualifier) else qualifier
        bit = self.lattice._bit.get(name)
        if bit is None:
            raise LatticeError(f"unknown qualifier {name!r} for lattice {self.lattice}")
        return self.lattice.from_mask(self.mask & ~bit)

    def __str__(self) -> str:
        if not self.present:
            return "<none>"
        return " ".join(sorted(self.present))

    def __repr__(self) -> str:
        return f"LatticeElement({sorted(self.present)})"

    # Convenience operator aliases.  These require both operands to belong
    # to the same lattice; mixing lattices raises LatticeError.
    def __le__(self, other: "LatticeElement") -> bool:
        return self.lattice.leq(self, other)

    def __ge__(self, other: "LatticeElement") -> bool:
        return self.lattice.leq(other, self)

    def __lt__(self, other: "LatticeElement") -> bool:
        return self != other and self.lattice.leq(self, other)

    def __gt__(self, other: "LatticeElement") -> bool:
        return self != other and self.lattice.leq(other, self)

    def __and__(self, other: "LatticeElement") -> "LatticeElement":
        return self.lattice.meet(self, other)

    def __or__(self, other: "LatticeElement") -> "LatticeElement":
        return self.lattice.join(self, other)


class QualifierLattice:
    """The product lattice ``L = L_q1 x ... x L_qn`` of Definition 2.

    Construct one from an iterable of :class:`Qualifier`; qualifier names
    must be distinct.  The lattice exposes the standard order-theoretic
    operations plus :meth:`negate`, the ``not q`` element used by type rules
    such as (Assign') to say "definitely lacks positive qualifier q".
    """

    def __init__(self, qualifiers: Iterable[Qualifier]):
        quals = list(qualifiers)
        names = [q.name for q in quals]
        if len(set(names)) != len(names):
            raise LatticeError(f"duplicate qualifier names in {names}")
        self._qualifiers: dict[str, Qualifier] = {q.name: q for q in quals}
        self.names: frozenset[str] = frozenset(names)

        # Canonical qualifier ordering (sorted names) and the bitmask
        # tables of the integer kernel.  Masks are comparable across
        # structurally-equal lattices because the ordering is canonical.
        self._order: tuple[str, ...] = tuple(sorted(names))
        self._bit: dict[str, int] = {n: 1 << i for i, n in enumerate(self._order)}
        pos = neg = 0
        for name, bit in self._bit.items():
            if self._qualifiers[name].positive:
                pos |= bit
            else:
                neg |= bit
        self._pos_mask: int = pos
        self._neg_mask: int = neg
        self._full_mask: int = pos | neg
        self._hash: int = hash(frozenset(self._qualifiers.values()))
        self._sorted_qualifiers: tuple[Qualifier, ...] = tuple(
            self._qualifiers[n] for n in self._order
        )
        # Hash-consing table: bitmask -> the unique LatticeElement.
        self._interned: dict[int, LatticeElement] = {}
        self.bottom: LatticeElement = self.from_mask(neg)
        self.top: LatticeElement = self.from_mask(pos)

    def __reduce__(self):
        # Rebuild through __init__ on unpickle: the lattice's state holds
        # interned elements that reference the lattice itself, and the
        # default dict-restoring protocol would hand LatticeElement's
        # reconstructor a half-restored lattice mid-cycle.
        return (QualifierLattice, (tuple(self._sorted_qualifiers),))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def qualifiers(self) -> tuple[Qualifier, ...]:
        """All qualifiers, sorted by name for determinism."""
        return self._sorted_qualifiers

    def qualifier(self, name: str) -> Qualifier:
        """Look up a qualifier by name."""
        try:
            return self._qualifiers[name]
        except KeyError:
            raise LatticeError(f"unknown qualifier {name!r}; have {sorted(self.names)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._qualifiers

    def __len__(self) -> int:
        return len(self._qualifiers)

    def __str__(self) -> str:
        parts = [f"{q.name}{'+' if q.positive else '-'}" for q in self.qualifiers]
        return "L(" + ", ".join(parts) + ")"

    __repr__ = __str__

    def __eq__(self, other: object) -> bool:
        # Structural equality: two lattices over the same qualifiers are the
        # same lattice, so elements built from independently-constructed but
        # identical lattices compare equal.
        if not isinstance(other, QualifierLattice):
            return NotImplemented
        return self._qualifiers == other._qualifiers

    def __hash__(self) -> int:
        return self._hash

    def signature(self) -> str:
        """Canonical textual form: ``name+;name-`` in canonical (sorted
        name) order.  Structurally equal lattices have equal signatures,
        and bitmasks are exchangeable between a lattice and the one
        rebuilt via :meth:`from_signature` — the binary cache stores this
        string instead of pickling the lattice object graph.
        """
        return ";".join(
            f"{q.name}{'+' if q.positive else '-'}" for q in self._sorted_qualifiers
        )

    @classmethod
    def from_signature(cls, text: str) -> "QualifierLattice":
        """Rebuild a lattice from :meth:`signature` output."""
        qualifiers = []
        for part in text.split(";") if text else []:
            name, tag = part[:-1], part[-1:]
            if not name or tag not in {"+", "-"}:
                raise LatticeError(f"malformed lattice signature part: {part!r}")
            polarity = Polarity.POSITIVE if tag == "+" else Polarity.NEGATIVE
            qualifiers.append(Qualifier(name, polarity))
        return cls(qualifiers)

    # ------------------------------------------------------------------
    # Element construction
    # ------------------------------------------------------------------
    def _mask_of(self, present: frozenset[str]) -> int:
        """Bitmask of a set of qualifier names (validating membership)."""
        mask = 0
        bit = self._bit
        for name in present:
            b = bit.get(name)
            if b is None:
                unknown = sorted(set(present) - self.names)
                raise LatticeError(f"unknown qualifiers {unknown} for lattice {self}")
            mask |= b
        return mask

    def from_mask(self, mask: int) -> LatticeElement:
        """The interned element for a bitmask in canonical qualifier order."""
        cached = self._interned.get(mask)
        if cached is not None:
            return cached
        if mask & ~self._full_mask:
            raise LatticeError(f"mask {mask:#x} has bits outside lattice {self}")
        bit = self._bit
        return LatticeElement(
            self, frozenset(n for n in self._order if bit[n] & mask)
        )

    def element(self, *names: str) -> LatticeElement:
        """The element with exactly the given qualifiers present."""
        return LatticeElement(self, frozenset(names))

    def negate(self, name: str) -> LatticeElement:
        """The element ``not q`` from Section 2: the extremal element on
        which ``q`` is absent.

        For positive ``q`` this is the *maximal* element lacking ``q`` (all
        other coordinates at their tops), used as an upper bound — rules
        like (Assign') demand ``Q <= negate("const")`` to force ``Q`` to
        definitely lack ``const``.  For negative ``q`` it is the *minimal*
        element lacking ``q``, used as a lower bound — ``negate(q) <= Q``
        forces ``Q`` to definitely lack ``q``.
        """
        q = self.qualifier(name)
        if q.positive:
            return self.top.without_qualifier(name)
        return self.bottom.without_qualifier(name)

    def atom(self, name: str) -> LatticeElement:
        """The least annotation constant that *mentions* qualifier ``name``.

        Annotations raise the top-level qualifier monotonically from bottom
        (Section 2.2).  For a positive qualifier the atom is bottom plus the
        qualifier — the least element on which ``q`` holds.  For a negative
        qualifier, where presence is *low*, annotation can only remove it:
        the atom is the least element lacking ``q`` (e.g. annotating a list
        as possibly-unsorted removes ``sorted``).
        """
        q = self.qualifier(name)
        if q.positive:
            return self.bottom.with_qualifier(name)
        return self.bottom.without_qualifier(name)

    def assertion_bound(self, name: str) -> LatticeElement:
        """The upper bound an assertion ``e|l`` uses to check ``name``'s
        restrictive direction.

        Assertions check ``Q <= l`` (Section 2.2).  For a positive
        qualifier the restrictive check is *absence* (``e|not-const`` on
        assignment targets): the bound is :meth:`negate`.  For a negative
        qualifier the restrictive check is *presence* (asserting a list is
        ``sorted`` before merging): the bound is the maximal element on
        which the qualifier is still present.
        """
        q = self.qualifier(name)
        if q.positive:
            return self.negate(name)
        return self.top.with_qualifier(name)

    # ------------------------------------------------------------------
    # Order-theoretic operations
    # ------------------------------------------------------------------
    def _check(self, *elements: LatticeElement) -> None:
        for element in elements:
            if element.lattice is not self and element.lattice != self:
                raise LatticeError(f"element {element!r} does not belong to lattice {self}")

    def leq_mask(self, a: int, b: int) -> bool:
        """The partial order over raw bitmasks (see module docstring)."""
        return not ((a & ~b & self._pos_mask) | (b & ~a & self._neg_mask))

    def meet_mask(self, a: int, b: int) -> int:
        """Greatest lower bound over raw bitmasks."""
        return (a & b & self._pos_mask) | ((a | b) & self._neg_mask)

    def join_mask(self, a: int, b: int) -> int:
        """Least upper bound over raw bitmasks."""
        return ((a | b) & self._pos_mask) | (a & b & self._neg_mask)

    def leq(self, a: LatticeElement, b: LatticeElement) -> bool:
        """The partial order: pointwise over each qualifier coordinate."""
        self._check(a, b)
        return not (
            (a.mask & ~b.mask & self._pos_mask) | (b.mask & ~a.mask & self._neg_mask)
        )

    def meet(self, a: LatticeElement, b: LatticeElement) -> LatticeElement:
        """Greatest lower bound."""
        self._check(a, b)
        return self.from_mask(self.meet_mask(a.mask, b.mask))

    def join(self, a: LatticeElement, b: LatticeElement) -> LatticeElement:
        """Least upper bound."""
        self._check(a, b)
        return self.from_mask(self.join_mask(a.mask, b.mask))

    def meet_all(self, elements: Iterable[LatticeElement]) -> LatticeElement:
        """Meet of a collection; the meet of nothing is top."""
        result = self.top
        for element in elements:
            result = self.meet(result, element)
        return result

    def join_all(self, elements: Iterable[LatticeElement]) -> LatticeElement:
        """Join of a collection; the join of nothing is bottom."""
        result = self.bottom
        for element in elements:
            result = self.join(result, element)
        return result

    # ------------------------------------------------------------------
    # Enumeration and display
    # ------------------------------------------------------------------
    def elements(self) -> Iterator[LatticeElement]:
        """Enumerate all 2^n lattice elements (for small lattices/tests)."""
        names = sorted(self.names)
        for mask in itertools.product((False, True), repeat=len(names)):
            chosen = frozenset(n for n, keep in zip(names, mask) if keep)
            yield LatticeElement(self, chosen)

    def covers(self, a: LatticeElement, b: LatticeElement) -> bool:
        """Whether ``b`` covers ``a``: a < b with nothing strictly between.

        In the product of two-point lattices, cover pairs differ in exactly
        one coordinate, which makes Hasse-diagram rendering straightforward.
        """
        self._check(a, b)
        if not (self.leq(a, b) and a != b):
            return False
        return len(a.present ^ b.present) == 1

    def hasse_levels(self) -> list[list[LatticeElement]]:
        """Group all elements by height (number of up-steps from bottom).

        Used to render Figure 2-style diagrams of the lattice.
        """
        def height(e: LatticeElement) -> int:
            h = 0
            for q in self.qualifiers:
                has = q.name in e.present
                if q.positive and has:
                    h += 1
                if q.negative and not has:
                    h += 1
            return h

        levels: dict[int, list[LatticeElement]] = {}
        for e in self.elements():
            levels.setdefault(height(e), []).append(e)
        return [sorted(levels[h], key=str) for h in sorted(levels)]

    def render_hasse(self) -> str:
        """Render the lattice as ASCII art, one height level per line,
        bottom-most level last (as Figure 2 draws it)."""
        levels = self.hasse_levels()
        width = max(
            (sum(len(str(e)) + 3 for e in level) for level in levels), default=0
        )
        lines = []
        for level in reversed(levels):
            label = "   ".join(str(e) for e in level)
            lines.append(label.center(width))
        return "\n".join(lines)


def two_point(qualifier: Qualifier) -> QualifierLattice:
    """The lattice ``L_q`` of a single qualifier (Definition 2)."""
    return QualifierLattice([qualifier])


def product(*lattices: QualifierLattice) -> QualifierLattice:
    """Product of qualifier lattices; qualifier names must stay distinct."""
    quals: list[Qualifier] = []
    for lattice in lattices:
        quals.extend(lattice.qualifiers)
    return QualifierLattice(quals)
