"""Qualifier lattices (paper Section 2, Definitions 1 and 2).

A *type qualifier* ``q`` is **positive** if ``tau <= q tau`` for every
standard type ``tau`` (e.g. ``const``: a non-const l-value may be promoted to
a const l-value) and **negative** if ``q tau <= tau`` (e.g. ``nonzero``: a
known-nonzero integer may be used wherever any integer is expected).

Each positive qualifier ``q`` induces the two-point lattice
``absent(q) <= q`` and each negative qualifier the two-point lattice
``q <= absent(q)``.  A *qualifier lattice* over qualifiers ``q1 .. qn`` is
the product ``L = L_q1 x ... x L_qn``; its elements are the sets of
qualifiers that may decorate a single level of a type.  Moving *up* the
lattice adds positive qualifiers and removes negative ones (Figure 2).

This module implements:

* :class:`Qualifier` — a named qualifier with a polarity.
* :class:`QualifierLattice` — the product lattice with ``leq``, ``meet``,
  ``join``, ``bottom``, ``top``, the ``not q`` element :meth:`QualifierLattice.negate`
  used by rules such as (Assign'), and enumeration/pretty-printing helpers.
* :class:`LatticeElement` — an immutable element of a particular lattice.

The lattice is deliberately independent of any type structure: the rest of
the framework (``repro.qual.qtypes``, ``repro.qual.solver``) treats lattice
elements as opaque constants ordered by :meth:`QualifierLattice.leq`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator


class Polarity(enum.Enum):
    """Whether a qualifier sits above or below the unqualified type.

    ``POSITIVE``: ``tau <= q tau`` (const, dynamic, tainted, ...).
    ``NEGATIVE``: ``q tau <= tau`` (nonzero, nonnull, sorted, local, ...).
    """

    POSITIVE = "positive"
    NEGATIVE = "negative"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polarity.{self.name}"


@dataclass(frozen=True, order=True)
class Qualifier:
    """A single user-defined type qualifier.

    Attributes:
        name: the surface syntax of the qualifier (e.g. ``"const"``).
        polarity: whether the qualifier is positive or negative.
    """

    name: str
    polarity: Polarity

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid qualifier name: {self.name!r}")

    @property
    def positive(self) -> bool:
        return self.polarity is Polarity.POSITIVE

    @property
    def negative(self) -> bool:
        return self.polarity is Polarity.NEGATIVE

    def __str__(self) -> str:
        return self.name


def positive(name: str) -> Qualifier:
    """Construct a positive qualifier (``tau <= q tau``)."""
    return Qualifier(name, Polarity.POSITIVE)


def negative(name: str) -> Qualifier:
    """Construct a negative qualifier (``q tau <= tau``)."""
    return Qualifier(name, Polarity.NEGATIVE)


class LatticeError(Exception):
    """Raised for ill-formed lattice operations (unknown qualifiers, or
    mixing elements of different lattices)."""


@dataclass(frozen=True)
class LatticeElement:
    """An element of a :class:`QualifierLattice`.

    The element is represented by the *present* qualifiers: the set of
    qualifier names whose two-point lattice coordinate is the named point
    (rather than the anonymous ``absent`` point).  So for the lattice over
    ``{const (+), nonzero (-)}``:

    * ``{}`` is the element with no const and no nonzero,
    * ``{"const", "nonzero"}`` has both.

    Ordering: a positive qualifier present moves the element *up*; a
    negative qualifier present moves it *down*.  Bottom therefore has no
    positive qualifiers and all negative ones; top has all positive
    qualifiers and no negative ones.

    Elements are immutable and hashable so they can be used as constraint
    constants and dictionary keys.
    """

    lattice: "QualifierLattice"
    present: frozenset[str]

    def __post_init__(self) -> None:
        unknown = self.present - self.lattice.names
        if unknown:
            raise LatticeError(f"unknown qualifiers {sorted(unknown)} for lattice {self.lattice}")

    def has(self, qualifier: str | Qualifier) -> bool:
        """Whether the named qualifier is present on this element."""
        name = qualifier.name if isinstance(qualifier, Qualifier) else qualifier
        if name not in self.lattice.names:
            raise LatticeError(f"unknown qualifier {name!r} for lattice {self.lattice}")
        return name in self.present

    def with_qualifier(self, qualifier: str | Qualifier) -> "LatticeElement":
        """This element with the named qualifier added (present)."""
        name = qualifier.name if isinstance(qualifier, Qualifier) else qualifier
        if name not in self.lattice.names:
            raise LatticeError(f"unknown qualifier {name!r} for lattice {self.lattice}")
        return LatticeElement(self.lattice, self.present | {name})

    def without_qualifier(self, qualifier: str | Qualifier) -> "LatticeElement":
        """This element with the named qualifier removed (absent)."""
        name = qualifier.name if isinstance(qualifier, Qualifier) else qualifier
        if name not in self.lattice.names:
            raise LatticeError(f"unknown qualifier {name!r} for lattice {self.lattice}")
        return LatticeElement(self.lattice, self.present - {name})

    def __str__(self) -> str:
        if not self.present:
            return "<none>"
        return " ".join(sorted(self.present))

    def __repr__(self) -> str:
        return f"LatticeElement({sorted(self.present)})"

    # Convenience operator aliases.  These require both operands to belong
    # to the same lattice; mixing lattices raises LatticeError.
    def __le__(self, other: "LatticeElement") -> bool:
        return self.lattice.leq(self, other)

    def __ge__(self, other: "LatticeElement") -> bool:
        return self.lattice.leq(other, self)

    def __lt__(self, other: "LatticeElement") -> bool:
        return self != other and self.lattice.leq(self, other)

    def __gt__(self, other: "LatticeElement") -> bool:
        return self != other and self.lattice.leq(other, self)

    def __and__(self, other: "LatticeElement") -> "LatticeElement":
        return self.lattice.meet(self, other)

    def __or__(self, other: "LatticeElement") -> "LatticeElement":
        return self.lattice.join(self, other)


class QualifierLattice:
    """The product lattice ``L = L_q1 x ... x L_qn`` of Definition 2.

    Construct one from an iterable of :class:`Qualifier`; qualifier names
    must be distinct.  The lattice exposes the standard order-theoretic
    operations plus :meth:`negate`, the ``not q`` element used by type rules
    such as (Assign') to say "definitely lacks positive qualifier q".
    """

    def __init__(self, qualifiers: Iterable[Qualifier]):
        quals = list(qualifiers)
        names = [q.name for q in quals]
        if len(set(names)) != len(names):
            raise LatticeError(f"duplicate qualifier names in {names}")
        self._qualifiers: dict[str, Qualifier] = {q.name: q for q in quals}
        self.names: frozenset[str] = frozenset(names)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def qualifiers(self) -> tuple[Qualifier, ...]:
        """All qualifiers, sorted by name for determinism."""
        return tuple(self._qualifiers[n] for n in sorted(self._qualifiers))

    def qualifier(self, name: str) -> Qualifier:
        """Look up a qualifier by name."""
        try:
            return self._qualifiers[name]
        except KeyError:
            raise LatticeError(f"unknown qualifier {name!r}; have {sorted(self.names)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._qualifiers

    def __len__(self) -> int:
        return len(self._qualifiers)

    def __str__(self) -> str:
        parts = [f"{q.name}{'+' if q.positive else '-'}" for q in self.qualifiers]
        return "L(" + ", ".join(parts) + ")"

    __repr__ = __str__

    def __eq__(self, other: object) -> bool:
        # Structural equality: two lattices over the same qualifiers are the
        # same lattice, so elements built from independently-constructed but
        # identical lattices compare equal.
        if not isinstance(other, QualifierLattice):
            return NotImplemented
        return self._qualifiers == other._qualifiers

    def __hash__(self) -> int:
        return hash(frozenset(self._qualifiers.values()))

    # ------------------------------------------------------------------
    # Element construction
    # ------------------------------------------------------------------
    def element(self, *names: str) -> LatticeElement:
        """The element with exactly the given qualifiers present."""
        return LatticeElement(self, frozenset(names))

    @property
    def bottom(self) -> LatticeElement:
        """Least element: no positive qualifiers, all negative ones."""
        return self.element(*(q.name for q in self.qualifiers if q.negative))

    @property
    def top(self) -> LatticeElement:
        """Greatest element: all positive qualifiers, no negative ones."""
        return self.element(*(q.name for q in self.qualifiers if q.positive))

    def negate(self, name: str) -> LatticeElement:
        """The element ``not q`` from Section 2: the extremal element on
        which ``q`` is absent.

        For positive ``q`` this is the *maximal* element lacking ``q`` (all
        other coordinates at their tops), used as an upper bound — rules
        like (Assign') demand ``Q <= negate("const")`` to force ``Q`` to
        definitely lack ``const``.  For negative ``q`` it is the *minimal*
        element lacking ``q``, used as a lower bound — ``negate(q) <= Q``
        forces ``Q`` to definitely lack ``q``.
        """
        q = self.qualifier(name)
        if q.positive:
            return self.top.without_qualifier(name)
        return self.bottom.without_qualifier(name)

    def atom(self, name: str) -> LatticeElement:
        """The least annotation constant that *mentions* qualifier ``name``.

        Annotations raise the top-level qualifier monotonically from bottom
        (Section 2.2).  For a positive qualifier the atom is bottom plus the
        qualifier — the least element on which ``q`` holds.  For a negative
        qualifier, where presence is *low*, annotation can only remove it:
        the atom is the least element lacking ``q`` (e.g. annotating a list
        as possibly-unsorted removes ``sorted``).
        """
        q = self.qualifier(name)
        if q.positive:
            return self.bottom.with_qualifier(name)
        return self.bottom.without_qualifier(name)

    def assertion_bound(self, name: str) -> LatticeElement:
        """The upper bound an assertion ``e|l`` uses to check ``name``'s
        restrictive direction.

        Assertions check ``Q <= l`` (Section 2.2).  For a positive
        qualifier the restrictive check is *absence* (``e|not-const`` on
        assignment targets): the bound is :meth:`negate`.  For a negative
        qualifier the restrictive check is *presence* (asserting a list is
        ``sorted`` before merging): the bound is the maximal element on
        which the qualifier is still present.
        """
        q = self.qualifier(name)
        if q.positive:
            return self.negate(name)
        return self.top.with_qualifier(name)

    # ------------------------------------------------------------------
    # Order-theoretic operations
    # ------------------------------------------------------------------
    def _check(self, *elements: LatticeElement) -> None:
        for element in elements:
            if element.lattice is not self and element.lattice != self:
                raise LatticeError(f"element {element!r} does not belong to lattice {self}")

    def leq(self, a: LatticeElement, b: LatticeElement) -> bool:
        """The partial order: pointwise over each qualifier coordinate."""
        self._check(a, b)
        for q in self.qualifiers:
            a_has, b_has = q.name in a.present, q.name in b.present
            if q.positive and a_has and not b_has:
                return False
            if q.negative and b_has and not a_has:
                return False
        return True

    def meet(self, a: LatticeElement, b: LatticeElement) -> LatticeElement:
        """Greatest lower bound."""
        self._check(a, b)
        present: set[str] = set()
        for q in self.qualifiers:
            a_has, b_has = q.name in a.present, q.name in b.present
            if q.positive and a_has and b_has:
                present.add(q.name)
            if q.negative and (a_has or b_has):
                present.add(q.name)
        return LatticeElement(self, frozenset(present))

    def join(self, a: LatticeElement, b: LatticeElement) -> LatticeElement:
        """Least upper bound."""
        self._check(a, b)
        present: set[str] = set()
        for q in self.qualifiers:
            a_has, b_has = q.name in a.present, q.name in b.present
            if q.positive and (a_has or b_has):
                present.add(q.name)
            if q.negative and a_has and b_has:
                present.add(q.name)
        return LatticeElement(self, frozenset(present))

    def meet_all(self, elements: Iterable[LatticeElement]) -> LatticeElement:
        """Meet of a collection; the meet of nothing is top."""
        result = self.top
        for element in elements:
            result = self.meet(result, element)
        return result

    def join_all(self, elements: Iterable[LatticeElement]) -> LatticeElement:
        """Join of a collection; the join of nothing is bottom."""
        result = self.bottom
        for element in elements:
            result = self.join(result, element)
        return result

    # ------------------------------------------------------------------
    # Enumeration and display
    # ------------------------------------------------------------------
    def elements(self) -> Iterator[LatticeElement]:
        """Enumerate all 2^n lattice elements (for small lattices/tests)."""
        names = sorted(self.names)
        for mask in itertools.product((False, True), repeat=len(names)):
            chosen = frozenset(n for n, keep in zip(names, mask) if keep)
            yield LatticeElement(self, chosen)

    def covers(self, a: LatticeElement, b: LatticeElement) -> bool:
        """Whether ``b`` covers ``a``: a < b with nothing strictly between.

        In the product of two-point lattices, cover pairs differ in exactly
        one coordinate, which makes Hasse-diagram rendering straightforward.
        """
        self._check(a, b)
        if not (self.leq(a, b) and a != b):
            return False
        return len(a.present ^ b.present) == 1

    def hasse_levels(self) -> list[list[LatticeElement]]:
        """Group all elements by height (number of up-steps from bottom).

        Used to render Figure 2-style diagrams of the lattice.
        """
        def height(e: LatticeElement) -> int:
            h = 0
            for q in self.qualifiers:
                has = q.name in e.present
                if q.positive and has:
                    h += 1
                if q.negative and not has:
                    h += 1
            return h

        levels: dict[int, list[LatticeElement]] = {}
        for e in self.elements():
            levels.setdefault(height(e), []).append(e)
        return [sorted(levels[h], key=str) for h in sorted(levels)]

    def render_hasse(self) -> str:
        """Render the lattice as ASCII art, one height level per line,
        bottom-most level last (as Figure 2 draws it)."""
        levels = self.hasse_levels()
        width = max(
            (sum(len(str(e)) + 3 for e in level) for level in levels), default=0
        )
        lines = []
        for level in reversed(levels):
            label = "   ".join(str(e) for e in level)
            lines.append(label.center(width))
        return "\n".join(lines)


def two_point(qualifier: Qualifier) -> QualifierLattice:
    """The lattice ``L_q`` of a single qualifier (Definition 2)."""
    return QualifierLattice([qualifier])


def product(*lattices: QualifierLattice) -> QualifierLattice:
    """Product of qualifier lattices; qualifier names must stay distinct."""
    quals: list[Qualifier] = []
    for lattice in lattices:
        quals.extend(lattice.qualifiers)
    return QualifierLattice(quals)
