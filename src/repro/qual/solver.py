"""Atomic qualifier-constraint solver (paper Section 3.1).

After structural decomposition the constraint system consists solely of
atomic constraints of the forms::

    kappa <= kappa'      (variable/variable)
    l     <= kappa       (constant lower bound)
    kappa <= l           (constant upper bound)
    l     <= l'          (ground check)

over a fixed finite qualifier lattice.  Henglein and Rehof showed such
systems are solvable in linear time for a fixed lattice; this solver
realises that bound with a three-stage pipeline:

1. **Indexing** (:class:`IndexedSystem`) — constraints are categorised
   once into integer-indexed bound masks and a deduplicated
   variable/variable edge set.  The indexed form is incremental:
   :meth:`IndexedSystem.fork` shares an already-categorised base system
   so iterative engines (``run_polyrec``) never re-categorise the shared
   prefix.
2. **Condensation** — strongly connected components of the
   variable/variable graph are collapsed (iterative Tarjan — no
   recursion, constraint graphs of deep programs are deep) into
   representative nodes; all members of a ``<=``-cycle are equal in
   every solution.
3. **Propagation** — a single pass per direction over the condensation
   DAG in (reverse-)topological order, entirely on integer bitmasks
   (:meth:`~repro.qual.lattice.QualifierLattice.join_mask` /
   :meth:`~repro.qual.lattice.QualifierLattice.meet_mask`), replaces the
   generic worklist fixpoint:

   * **least solution** — start every variable at lattice bottom and
     push constant *lower* bounds forward along ``kappa <= kappa'``
     edges, sources first;
   * **greatest solution** — dually, start at top and push constant
     *upper* bounds backward, sinks first.

The system is satisfiable iff the least solution satisfies every upper
bound; equivalently iff ``least(kappa) <= greatest(kappa)`` for all
``kappa``.  Both extreme solutions are exposed because qualifier
inference needs them to classify each position (Section 4.4):

* a variable **must** carry positive qualifier q if its least solution
  already contains q;
* it **cannot** carry q if its greatest solution lacks q;
* otherwise it **may** carry q — these are the "could be either"
  positions that the const experiment counts, and exactly the positions
  a polymorphic type leaves as unconstrained variables.

Provenance: every deduplicated edge keeps the constraint that created
it as a witness (including the intra-SCC edges of collapsed cycles), so
on unsatisfiability the solver re-runs the provenance-tracking worklist
(:func:`solve_reference`'s propagation) over the witness graph — the
error path is cold — and reconstructs a source-constant → ... →
sink-constant blame chain exactly as the naive solver would, cycles
included.  :class:`Solution` additionally carries :class:`SolverStats`
so benchmarks and diagnostics can report pipeline shape (variables,
SCCs, edge dedup, propagation steps).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from .constraints import Origin, QualConstraint
from .lattice import LatticeElement, QualifierLattice
from .qtypes import QualVar


class UnsatisfiableError(Exception):
    """The constraint system has no solution.

    Carries the offending constraint, the conflicting bounds, and — when
    the solver tracked provenance — the *path* of constraints from the
    constant lower-bound source through the variable chain to the
    constant upper-bound sink, so callers can report the whole story:
    "const declared at a.c:3 flows through the call at a.c:9 into the
    assignment target at a.c:12".
    """

    def __init__(
        self,
        constraint: QualConstraint,
        lower: LatticeElement,
        upper: LatticeElement,
        path: list[QualConstraint] | None = None,
    ):
        self.constraint = constraint
        self.lower = lower
        self.upper = upper
        self.path = path or [constraint]
        super().__init__(
            f"unsatisfiable qualifier constraint: {constraint} "
            f"(forced lower bound {lower} exceeds upper bound {upper}; {constraint.origin})"
        )

    def explain(self) -> str:
        """Multi-line explanation following the conflicting flow."""
        lines = [
            f"conflict: lower bound {self.lower} cannot fit under "
            f"upper bound {self.upper}"
        ]
        for step in self.path:
            lines.append(f"  via {step}  ({step.origin})")
        return "\n".join(lines)


class Classification(enum.Enum):
    """Three-way outcome of inference for one qualifier at one position
    (Section 4.4: must be const / must not be const / could be either)."""

    MUST = "must"
    MUST_NOT = "must-not"
    EITHER = "either"


@dataclass(frozen=True)
class SolverStats:
    """Shape of one solver run, for benchmarks and diagnostics.

    ``edges_before`` counts raw variable/variable constraints,
    ``edges_after`` the surviving deduplicated edges, and ``dag_edges``
    the inter-component edges of the condensation actually propagated
    over.  ``propagation_steps`` sums the edge relaxations of both
    directional passes (least + greatest).
    """

    variables: int
    constraints: int
    ground_checks: int
    constant_bounds: int
    edges_before: int
    edges_after: int
    sccs: int
    collapsed_sccs: int
    largest_scc: int
    dag_edges: int
    propagation_steps: int

    def summary(self) -> str:
        """One-line rendering for benchmark reports."""
        return (
            f"{self.variables} vars, {self.constraints} constraints, "
            f"{self.sccs} SCCs ({self.collapsed_sccs} collapsed, "
            f"largest {self.largest_scc}), edges {self.edges_before}"
            f"->{self.edges_after} deduped ({self.dag_edges} DAG), "
            f"{self.propagation_steps} propagation steps"
        )


@dataclass
class Solution:
    """Extreme solutions of an atomic constraint system."""

    lattice: QualifierLattice
    least: dict[QualVar, LatticeElement]
    greatest: dict[QualVar, LatticeElement]
    stats: SolverStats | None = None

    def least_of(self, var: QualVar) -> LatticeElement:
        """Least solution of a variable (bottom if unmentioned)."""
        return self.least.get(var, self.lattice.bottom)

    def greatest_of(self, var: QualVar) -> LatticeElement:
        """Greatest solution of a variable (top if unmentioned)."""
        return self.greatest.get(var, self.lattice.top)

    def classify(self, var: QualVar, qualifier: str) -> Classification:
        """Classify a variable with respect to one qualifier by name.

        For a positive qualifier q: MUST if the least solution contains q,
        MUST_NOT if the greatest solution lacks it, EITHER otherwise.  For
        a negative qualifier the roles of the extremes swap (a negative
        qualifier present moves the element *down* the lattice).
        """
        q = self.lattice.qualifier(qualifier)
        lo, hi = self.least_of(var), self.greatest_of(var)
        if q.positive:
            if lo.has(q):
                return Classification.MUST
            if not hi.has(q):
                return Classification.MUST_NOT
        else:
            if hi.has(q):
                return Classification.MUST
            if not lo.has(q):
                return Classification.MUST_NOT
        return Classification.EITHER

    def is_unconstrained(self, var: QualVar) -> bool:
        """Whether the variable ranges over the whole lattice."""
        return (
            self.least_of(var) == self.lattice.bottom
            and self.greatest_of(var) == self.lattice.top
        )


def _as_element(q: QualVar | LatticeElement) -> LatticeElement | None:
    return q if isinstance(q, LatticeElement) else None


#: Systems with fewer than this many variables + deduplicated edges stay
#: on the object pipeline: the flat kernel's fixed numpy/scipy overhead
#: (~0.3 ms) only pays for itself on large graphs, and most lambda runs
#: solve dozens of systems of a few hundred nodes each.
_FLAT_FAST_MIN = 1024


class IndexedSystem:
    """An atomic constraint system categorised into integer-indexed form.

    Adding constraints folds constant bounds into per-variable bitmasks
    and deduplicates variable/variable edges (keeping the first
    constraint per edge as the provenance witness).  :meth:`solve` runs
    the condensation pipeline over the indexed state; :meth:`fork`
    copies the indexed state in O(size) dict copies so an iterative
    engine can extend a shared base system each round without paying the
    categorisation (isinstance tests, lattice joins) again.
    """

    def __init__(self, lattice: QualifierLattice):
        self.lattice = lattice
        self._var_index: dict[QualVar, int] = {}
        self._vars: list[QualVar] = []
        self._lower_mask: dict[int, int] = {}
        self._upper_mask: dict[int, int] = {}
        self._lower_origins: dict[int, QualConstraint] = {}
        self._upper_origins: dict[int, list[QualConstraint]] = {}
        #: (u, v) -> first constraint creating the edge u <= v.
        self._edges: dict[tuple[int, int], QualConstraint] = {}
        #: The same deduplicated edges as parallel int lists, maintained
        #: incrementally so the flat-array kernel (repro.qual.flatcore)
        #: can bulk-convert them without walking dict keys.
        self._edge_u: list[int] = []
        self._edge_v: list[int] = []
        self._edges_before = 0
        self._constraints = 0
        self._ground_checks = 0
        self._constant_bounds = 0
        self._ground_conflict: QualConstraint | None = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def _index(self, var: QualVar) -> int:
        i = self._var_index.get(var)
        if i is None:
            i = len(self._vars)
            self._var_index[var] = i
            self._vars.append(var)
        return i

    def add_var(self, var: QualVar) -> None:
        """Ensure a variable appears in the solution even if unmentioned."""
        self._index(var)

    def add(self, c: QualConstraint) -> None:
        """Categorise one atomic constraint into the indexed state."""
        self.add_many((c,))

    def add_many(self, constraints: Iterable[QualConstraint]) -> None:
        """Categorise a batch of constraints.

        This is the hot boundary between inference and solving — every
        generated constraint passes through exactly once — so the loop
        binds all lookup targets to locals.
        """
        lattice = self.lattice
        bottom_mask = lattice.bottom.mask
        top_mask = lattice.top.mask
        join_mask = lattice.join_mask
        meet_mask = lattice.meet_mask
        leq_mask = lattice.leq_mask
        var_index = self._var_index
        variables = self._vars
        lower_mask = self._lower_mask
        upper_mask = self._upper_mask
        lower_origins = self._lower_origins
        upper_origins = self._upper_origins
        edges = self._edges
        edge_u = self._edge_u
        edge_v = self._edge_v
        count = edges_before = ground_checks = constant_bounds = 0

        for c in constraints:
            count += 1
            lhs, rhs = c.lhs, c.rhs
            lhs_is_const = isinstance(lhs, LatticeElement)
            rhs_is_const = isinstance(rhs, LatticeElement)
            if lhs_is_const:
                if rhs_is_const:
                    ground_checks += 1
                    if self._ground_conflict is None and not leq_mask(
                        lhs.mask, rhs.mask
                    ):
                        self._ground_conflict = c
                    continue
                constant_bounds += 1
                i = var_index.get(rhs)
                if i is None:
                    i = var_index[rhs] = len(variables)
                    variables.append(rhs)
                prev = lower_mask.get(i, bottom_mask)
                joined = join_mask(prev, lhs.mask)
                if joined != prev:
                    lower_origins[i] = c
                    lower_mask[i] = joined
            elif rhs_is_const:
                constant_bounds += 1
                i = var_index.get(lhs)
                if i is None:
                    i = var_index[lhs] = len(variables)
                    variables.append(lhs)
                prev = upper_mask.get(i, top_mask)
                upper_mask[i] = meet_mask(prev, rhs.mask)
                bucket = upper_origins.get(i)
                if bucket is None:
                    upper_origins[i] = [c]
                else:
                    bucket.append(c)
            else:
                edges_before += 1
                u = var_index.get(lhs)
                if u is None:
                    u = var_index[lhs] = len(variables)
                    variables.append(lhs)
                v = var_index.get(rhs)
                if v is None:
                    v = var_index[rhs] = len(variables)
                    variables.append(rhs)
                if u != v:
                    key = (u, v)
                    if key not in edges:
                        edges[key] = c
                        edge_u.append(u)
                        edge_v.append(v)

        self._constraints += count
        self._edges_before += edges_before
        self._ground_checks += ground_checks
        self._constant_bounds += constant_bounds

    def fork(self) -> "IndexedSystem":
        """A copy sharing no mutable state — O(size) dict copies, no
        re-categorisation of constraint objects."""
        twin = IndexedSystem.__new__(IndexedSystem)
        twin.lattice = self.lattice
        twin._var_index = dict(self._var_index)
        twin._vars = list(self._vars)
        twin._lower_mask = dict(self._lower_mask)
        twin._upper_mask = dict(self._upper_mask)
        twin._lower_origins = dict(self._lower_origins)
        twin._upper_origins = {k: list(v) for k, v in self._upper_origins.items()}
        twin._edges = dict(self._edges)
        twin._edge_u = list(self._edge_u)
        twin._edge_v = list(self._edge_v)
        twin._edges_before = self._edges_before
        twin._constraints = self._constraints
        twin._ground_checks = self._ground_checks
        twin._constant_bounds = self._constant_bounds
        twin._ground_conflict = self._ground_conflict
        return twin

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _tarjan(self, n: int, adj: list[list[int]]) -> tuple[list[int], list[int]]:
        """Iterative Tarjan SCC.  Returns (component id per node, component
        sizes).  Component ids are assigned in completion order, so every
        inter-component edge goes from a higher id to a lower id — ids in
        descending order are a topological order of the condensation."""
        index_of = [-1] * n
        low = [0] * n
        on_stack = bytearray(n)
        stack: list[int] = []
        comp = [-1] * n
        sizes: list[int] = []
        counter = 0
        for root in range(n):
            if index_of[root] != -1:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                v, pi = work[-1]
                if pi == 0:
                    index_of[v] = low[v] = counter
                    counter += 1
                    stack.append(v)
                    on_stack[v] = 1
                descended = False
                neighbors = adj[v]
                while pi < len(neighbors):
                    w = neighbors[pi]
                    pi += 1
                    if index_of[w] == -1:
                        work[-1] = (v, pi)
                        work.append((w, 0))
                        descended = True
                        break
                    if on_stack[w] and index_of[w] < low[v]:
                        low[v] = index_of[w]
                if descended:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if low[v] < low[parent]:
                        low[parent] = low[v]
                if low[v] == index_of[v]:
                    size = 0
                    cid = len(sizes)
                    while True:
                        w = stack.pop()
                        on_stack[w] = 0
                        comp[w] = cid
                        size += 1
                        if w == v:
                            break
                    sizes.append(size)
        return comp, sizes

    def solve(self, extra_vars: Iterable[QualVar] = ()) -> Solution:
        """Solve the indexed system; see module docstring for the pipeline."""
        lattice = self.lattice
        if self._ground_conflict is not None:
            c = self._ground_conflict
            assert isinstance(c.lhs, LatticeElement) and isinstance(c.rhs, LatticeElement)
            raise UnsatisfiableError(c, c.lhs, c.rhs)
        for var in extra_vars:
            self._index(var)

        n = len(self._vars)
        if n + len(self._edges) >= _FLAT_FAST_MIN:
            # Large systems: hand the already-categorised arrays to the
            # flat CSR kernel (scipy condensation + vectorised folding).
            # It returns the identical Solution — same dicts, same stats,
            # same first-violation blame — or None when unavailable, in
            # which case the object pipeline below runs as before.
            from . import flatcore

            solution = flatcore.solve_indexed(self)
            if solution is not None:
                return solution
        adj: list[list[int]] = [[] for _ in range(n)]
        for u, v in self._edges:
            adj[u].append(v)
        comp, sizes = self._tarjan(n, adj)
        ncomp = len(sizes)

        # Condensation DAG with one witness edge per component pair.
        comp_succ: dict[int, dict[int, QualConstraint]] = {}
        dag_edges = 0
        for (u, v), c in self._edges.items():
            cu, cv = comp[u], comp[v]
            if cu == cv:
                continue
            succ = comp_succ.setdefault(cu, {})
            if cv not in succ:
                succ[cv] = c
                dag_edges += 1

        bottom_mask = lattice.bottom.mask
        top_mask = lattice.top.mask
        join_mask = lattice.join_mask
        meet_mask = lattice.meet_mask
        steps = 0

        # Least solution: sources first (descending component id).
        comp_low = [bottom_mask] * ncomp
        for i, mask in self._lower_mask.items():
            ci = comp[i]
            comp_low[ci] = join_mask(comp_low[ci], mask)
        for cu in range(ncomp - 1, -1, -1):
            m = comp_low[cu]
            if m == bottom_mask:
                continue
            for cv in comp_succ.get(cu, ()):
                merged = join_mask(comp_low[cv], m)
                steps += 1
                if merged != comp_low[cv]:
                    comp_low[cv] = merged

        # Greatest solution: sinks first (ascending component id), along
        # reversed edges.
        comp_pred: dict[int, list[int]] = {}
        for cu, succ in comp_succ.items():
            for cv in succ:
                comp_pred.setdefault(cv, []).append(cu)
        comp_high = [top_mask] * ncomp
        for i, mask in self._upper_mask.items():
            ci = comp[i]
            comp_high[ci] = meet_mask(comp_high[ci], mask)
        for cv in range(ncomp):
            m = comp_high[cv]
            if m == top_mask:
                continue
            for cu in comp_pred.get(cv, ()):
                merged = meet_mask(comp_high[cu], m)
                steps += 1
                if merged != comp_high[cu]:
                    comp_high[cu] = merged

        # Satisfiability: every variable's forced lower bound must sit
        # below its forced upper bound.
        leq_mask = lattice.leq_mask
        for i, var in enumerate(self._vars):
            ci = comp[i]
            if not leq_mask(comp_low[ci], comp_high[ci]):
                raise self._unsat_error(var, comp_low[ci], comp_high[ci])

        from_mask = lattice.from_mask
        least = {var: from_mask(comp_low[comp[i]]) for i, var in enumerate(self._vars)}
        greatest = {var: from_mask(comp_high[comp[i]]) for i, var in enumerate(self._vars)}
        stats = SolverStats(
            variables=n,
            constraints=self._constraints,
            ground_checks=self._ground_checks,
            constant_bounds=self._constant_bounds,
            edges_before=self._edges_before,
            edges_after=len(self._edges),
            sccs=ncomp,
            collapsed_sccs=sum(1 for s in sizes if s > 1),
            largest_scc=max(sizes, default=0),
            dag_edges=dag_edges,
            propagation_steps=steps,
        )
        return Solution(lattice, least, greatest, stats)

    # ------------------------------------------------------------------
    # Failure explanation (cold path)
    # ------------------------------------------------------------------
    def _unsat_error(
        self, var: QualVar, lo_mask: int, hi_mask: int
    ) -> UnsatisfiableError:
        """Reconstruct a blame path by re-running the provenance-tracking
        worklist over the witness edges.  The fast path keeps no
        per-variable provenance; errors are rare enough that an O(system)
        re-propagation for a precise explanation is the right trade."""
        lattice = self.lattice
        succs: dict[QualVar, list[tuple[QualVar, QualConstraint]]] = {}
        preds: dict[QualVar, list[tuple[QualVar, QualConstraint]]] = {}
        for (u, v), c in self._edges.items():
            uv, vv = self._vars[u], self._vars[v]
            succs.setdefault(uv, []).append((vv, c))
            preds.setdefault(vv, []).append((uv, c))
        variables = self._vars  # insertion order: worklist + blame stay deterministic
        lower = {
            self._vars[i]: lattice.from_mask(m) for i, m in self._lower_mask.items()
        }
        upper = {
            self._vars[i]: lattice.from_mask(m) for i, m in self._upper_mask.items()
        }
        lower_origins = {self._vars[i]: c for i, c in self._lower_origins.items()}
        upper_origins = {self._vars[i]: list(v) for i, v in self._upper_origins.items()}

        least, lower_pred = _propagate(variables, succs, lower, lattice, up=True)
        _greatest, upper_pred = _propagate(variables, preds, upper, lattice, up=False)

        lo = lattice.from_mask(lo_mask)
        hi = lattice.from_mask(hi_mask)
        path = _explain_path(
            var, lower_pred, upper_pred, lower_origins, upper_origins, lattice, least
        )
        witness = (
            path[-1]
            if path
            else _violated_upper(var, lo, upper_origins, lattice)
            or QualConstraint(var, hi, Origin("derived bound"))
        )
        return UnsatisfiableError(witness, lo, hi, path)


def solve(
    constraints: Iterable[QualConstraint],
    lattice: QualifierLattice,
    extra_vars: Iterable[QualVar] = (),
) -> Solution:
    """Solve an atomic constraint system over ``lattice``.

    Returns the least and greatest solutions (with :class:`SolverStats`
    attached); raises :class:`UnsatisfiableError` if none exists.
    ``extra_vars`` names variables that should appear in the solution
    even if no constraint mentions them (they solve to [bottom, top]).
    """
    system = IndexedSystem(lattice)
    system.add_many(constraints)
    return system.solve(extra_vars)


def _violated_upper(
    var: QualVar,
    lo: LatticeElement,
    upper_origins: Mapping[QualVar, list[QualConstraint]],
    lattice: QualifierLattice,
) -> QualConstraint | None:
    """The recorded constant upper-bound constraint that ``lo`` actually
    violates — not merely the first recorded one, which may be a looser
    bound (e.g. ``kappa <= top``) that played no part in the conflict."""
    candidates = upper_origins.get(var)
    if not candidates:
        return None
    for c in candidates:
        rhs = _as_element(c.rhs)
        if rhs is not None and not lattice.leq(lo, rhs):
            return c
    return candidates[0]


def _explain_path(
    var: QualVar,
    lower_pred: Mapping[QualVar, tuple[QualVar, QualConstraint]],
    upper_pred: Mapping[QualVar, tuple[QualVar, QualConstraint]],
    lower_origins: Mapping[QualVar, QualConstraint],
    upper_origins: Mapping[QualVar, list[QualConstraint]],
    lattice: QualifierLattice | None = None,
    least: Mapping[QualVar, LatticeElement] | None = None,
) -> list[QualConstraint]:
    """Reconstruct source-constant -> ... -> var -> ... -> sink-constant.

    When ``lattice`` and ``least`` are given, the sink constraint is the
    recorded upper bound the variable's forced value actually violates
    (see :func:`_violated_upper`); otherwise the first recorded bound is
    used.  Cyclic provenance chains (through collapsed ``<=``-cycles)
    terminate at the first revisited variable.
    """
    down: list[QualConstraint] = []
    cursor = var
    seen = {cursor}
    while cursor in lower_pred:
        origin_var, constraint = lower_pred[cursor]
        down.append(constraint)
        cursor = origin_var
        if cursor in seen:
            break
        seen.add(cursor)
    if cursor in lower_origins:
        down.append(lower_origins[cursor])
    down.reverse()

    up: list[QualConstraint] = []
    cursor = var
    seen = {cursor}
    while cursor in upper_pred:
        origin_var, constraint = upper_pred[cursor]
        up.append(constraint)
        cursor = origin_var
        if cursor in seen:
            break
        seen.add(cursor)
    if upper_origins.get(cursor):
        chosen: QualConstraint | None = None
        if lattice is not None and least is not None:
            lo = least.get(cursor)
            if lo is not None:
                chosen = _violated_upper(cursor, lo, upper_origins, lattice)
        up.append(chosen if chosen is not None else upper_origins[cursor][0])
    return down + up


def _propagate(
    variables: Iterable[QualVar],
    edges: Mapping[QualVar, list[tuple[QualVar, QualConstraint]]],
    init: Mapping[QualVar, LatticeElement],
    lattice: QualifierLattice,
    up: bool,
) -> tuple[dict[QualVar, LatticeElement], dict[QualVar, tuple[QualVar, QualConstraint]]]:
    """Worklist fixpoint with provenance — the reference propagation.

    With ``up=True`` computes the least solution: values start at bottom
    (or the variable's constant lower bound) and flow along edges via join.
    With ``up=False`` computes the greatest solution dually via meet.
    Returns the values plus, per variable, the (predecessor, constraint)
    whose propagation last changed it — enough to walk a blame path.

    The condensation pipeline computes the same fixpoint without
    provenance; this worklist remains as the blame reconstructor on the
    unsatisfiable path, as the reference for differential tests, and as
    the baseline for the condensation-vs-worklist microbenchmarks.
    """
    default = lattice.bottom if up else lattice.top
    combine = lattice.join if up else lattice.meet
    values: dict[QualVar, LatticeElement] = {
        v: init.get(v, default) for v in variables
    }
    provenance: dict[QualVar, tuple[QualVar, QualConstraint]] = {}
    work = deque(v for v in variables if values[v] != default)
    queued = set(work)
    while work:
        v = work.popleft()
        queued.discard(v)
        value = values[v]
        for w, constraint in edges.get(v, ()):
            merged = combine(values[w], value)
            if merged != values[w]:
                values[w] = merged
                provenance[w] = (v, constraint)
                if w not in queued:
                    work.append(w)
                    queued.add(w)
    return values, provenance


def shortest_flow_path(
    constraints: Iterable[QualConstraint],
    lattice: QualifierLattice,
    target: QualVar,
    bound: LatticeElement,
) -> list[QualConstraint] | None:
    """Shortest qualifier-flow path explaining why ``target``'s least
    solution violates the upper bound ``bound``.

    In a product of two-point lattices the least solution decomposes per
    coordinate, so whenever ``least(target) <= bound`` fails there is a
    *single* seeding constraint — a constant lower bound ``l <= kappa``
    with ``not (l <= bound)`` — from which the offending qualifier flows
    to ``target`` through variable-to-variable edges.  A multi-source BFS
    from every such seed therefore finds a minimum-length witness:
    ``[seed, edge, edge, ...]`` ending in a constraint whose right side
    is ``target`` (or just ``[seed]`` when ``target`` is seeded
    directly).  Returns ``None`` when no violating seed reaches
    ``target`` — i.e. the bound is actually satisfied.

    Ties break deterministically by origin span, then variable uid —
    *not* by constraint emission order — so the witness is stable no
    matter how the constraint list was assembled (``--jobs`` absorption
    order, cache-restored summaries, concatenated TUs).
    """

    def origin_rank(c: QualConstraint) -> tuple[str, int, int, str]:
        o = c.origin
        return (o.filename or "", o.line or 0, o.column or 0, o.reason)

    best_edge: dict[tuple[QualVar, QualVar], QualConstraint] = {}
    best_seed: dict[QualVar, QualConstraint] = {}

    for c in constraints:
        lhs, rhs = c.lhs, c.rhs
        if isinstance(lhs, QualVar) and isinstance(rhs, QualVar):
            key = (lhs, rhs)
            held = best_edge.get(key)
            if held is None or origin_rank(c) < origin_rank(held):
                best_edge[key] = c
        elif isinstance(rhs, QualVar):
            elem = _as_element(lhs)
            if elem is not None and not lattice.leq(elem, bound):
                held = best_seed.get(rhs)
                if held is None or origin_rank(c) < origin_rank(held):
                    best_seed[rhs] = c

    edges: dict[QualVar, list[tuple[QualVar, QualConstraint]]] = {}
    for (lhs, rhs), c in best_edge.items():
        edges.setdefault(lhs, []).append((rhs, c))
    for out in edges.values():
        out.sort(key=lambda e: (origin_rank(e[1]), e[0].uid, e[0].name))

    parent: dict[QualVar, tuple[QualVar | None, QualConstraint]] = {}
    queue: deque[QualVar] = deque()
    for var, seed in sorted(
        best_seed.items(), key=lambda s: (origin_rank(s[1]), s[0].uid, s[0].name)
    ):
        parent[var] = (None, seed)
        queue.append(var)

    while queue:
        v = queue.popleft()
        if v == target:
            break
        for w, constraint in edges.get(v, ()):
            if w not in parent:
                parent[w] = (v, constraint)
                queue.append(w)

    if target not in parent:
        return None
    path: list[QualConstraint] = []
    cursor: QualVar | None = target
    while cursor is not None:
        prev, constraint = parent[cursor]
        path.append(constraint)
        cursor = prev
    path.reverse()
    return path


def solve_reference(
    constraints: Iterable[QualConstraint],
    lattice: QualifierLattice,
    extra_vars: Iterable[QualVar] = (),
) -> Solution:
    """The pre-condensation solver: categorise, then run the generic
    worklist fixpoint in both directions.

    Kept verbatim as the differential-testing oracle and the baseline
    for ``benchmarks/test_solver_kernel.py``; :func:`solve` must agree
    with it on every satisfiable system.
    """
    constraint_list = list(constraints)

    succs: dict[QualVar, list[tuple[QualVar, QualConstraint]]] = {}
    preds: dict[QualVar, list[tuple[QualVar, QualConstraint]]] = {}
    lower: dict[QualVar, LatticeElement] = {}
    upper: dict[QualVar, LatticeElement] = {}
    lower_origins: dict[QualVar, QualConstraint] = {}
    upper_origins: dict[QualVar, list[QualConstraint]] = {}
    # First-encounter order (constraint variables, then the extras), so
    # the violation scan below blames the same variable as the indexed
    # pipeline's scan over ``self._vars``.  A set here would make the
    # blame among simultaneously violated variables depend on string
    # hash randomisation.
    variables: dict[QualVar, None] = {}

    for c in constraint_list:
        lhs_const, rhs_const = _as_element(c.lhs), _as_element(c.rhs)
        if lhs_const is not None and rhs_const is not None:
            if not lattice.leq(lhs_const, rhs_const):
                raise UnsatisfiableError(c, lhs_const, rhs_const)
        elif lhs_const is not None:
            assert isinstance(c.rhs, QualVar)
            variables[c.rhs] = None
            joined = lattice.join(lower.get(c.rhs, lattice.bottom), lhs_const)
            if joined != lower.get(c.rhs, lattice.bottom):
                lower_origins[c.rhs] = c
            lower[c.rhs] = joined
        elif rhs_const is not None:
            assert isinstance(c.lhs, QualVar)
            variables[c.lhs] = None
            upper[c.lhs] = lattice.meet(upper.get(c.lhs, lattice.top), rhs_const)
            upper_origins.setdefault(c.lhs, []).append(c)
        else:
            assert isinstance(c.lhs, QualVar) and isinstance(c.rhs, QualVar)
            variables[c.lhs] = None
            variables[c.rhs] = None
            succs.setdefault(c.lhs, []).append((c.rhs, c))
            preds.setdefault(c.rhs, []).append((c.lhs, c))
    for var in extra_vars:
        variables.setdefault(var, None)

    least, lower_pred = _propagate(variables, succs, lower, lattice, up=True)
    greatest, upper_pred = _propagate(variables, preds, upper, lattice, up=False)

    for var in variables:
        lo = least.get(var, lattice.bottom)
        hi = greatest.get(var, lattice.top)
        if not lattice.leq(lo, hi):
            path = _explain_path(
                var, lower_pred, upper_pred, lower_origins, upper_origins, lattice, least
            )
            witness = (
                path[-1]
                if path
                else _violated_upper(var, lo, upper_origins, lattice)
                or QualConstraint(var, hi, Origin("derived bound"))
            )
            raise UnsatisfiableError(witness, lo, hi, path)

    return Solution(lattice, least, greatest)


def satisfiable(
    constraints: Iterable[QualConstraint], lattice: QualifierLattice
) -> bool:
    """Whether the atomic system has any solution."""
    try:
        solve(constraints, lattice)
    except UnsatisfiableError:
        return False
    return True


def check_ground(
    constraints: Iterable[QualConstraint],
    lattice: QualifierLattice,
    assignment: Mapping[QualVar, LatticeElement],
) -> QualConstraint | None:
    """Check a candidate assignment; return the first violated constraint.

    Used by property-based tests to validate that solver solutions really
    satisfy the system, and by the checking (non-inference) pipeline.
    """
    def value(q: QualVar | LatticeElement) -> LatticeElement:
        if isinstance(q, LatticeElement):
            return q
        return assignment.get(q, lattice.bottom)

    for c in constraints:
        if not lattice.leq(value(c.lhs), value(c.rhs)):
            return c
    return None
