"""Atomic qualifier-constraint solver (paper Section 3.1).

After structural decomposition the constraint system consists solely of
atomic constraints of the forms::

    kappa <= kappa'      (variable/variable)
    l     <= kappa       (constant lower bound)
    kappa <= l           (constant upper bound)
    l     <= l'          (ground check)

over a fixed finite qualifier lattice.  Henglein and Rehof showed such
systems are solvable in linear time for a fixed lattice; this solver uses
the standard two-pass graph formulation:

* **least solution** — start every variable at lattice bottom and propagate
  constant *lower* bounds forward along ``kappa <= kappa'`` edges to a
  fixpoint (each variable's value only ever rises, so with a lattice of
  height h each variable is re-enqueued at most h times).
* **greatest solution** — dually, start at top and propagate constant
  *upper* bounds backward.

The system is satisfiable iff the least solution satisfies every upper
bound; equivalently iff ``least(kappa) <= greatest(kappa)`` for all
``kappa``.  Both extreme solutions are exposed because qualifier inference
needs them to classify each position (Section 4.4):

* a variable **must** carry positive qualifier q if its least solution
  already contains q;
* it **cannot** carry q if its greatest solution lacks q;
* otherwise it **may** carry q — these are the "could be either" positions
  that the const experiment counts, and exactly the positions a
  polymorphic type leaves as unconstrained variables.
"""

from __future__ import annotations

import enum
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from .constraints import Origin, QualConstraint
from .lattice import LatticeElement, QualifierLattice
from .qtypes import QualVar


class UnsatisfiableError(Exception):
    """The constraint system has no solution.

    Carries the offending constraint, the conflicting bounds, and — when
    the solver tracked provenance — the *path* of constraints from the
    constant lower-bound source through the variable chain to the
    constant upper-bound sink, so callers can report the whole story:
    "const declared at a.c:3 flows through the call at a.c:9 into the
    assignment target at a.c:12".
    """

    def __init__(
        self,
        constraint: QualConstraint,
        lower: LatticeElement,
        upper: LatticeElement,
        path: list[QualConstraint] | None = None,
    ):
        self.constraint = constraint
        self.lower = lower
        self.upper = upper
        self.path = path or [constraint]
        super().__init__(
            f"unsatisfiable qualifier constraint: {constraint} "
            f"(forced lower bound {lower} exceeds upper bound {upper}; {constraint.origin})"
        )

    def explain(self) -> str:
        """Multi-line explanation following the conflicting flow."""
        lines = [
            f"conflict: lower bound {self.lower} cannot fit under "
            f"upper bound {self.upper}"
        ]
        for step in self.path:
            lines.append(f"  via {step}  ({step.origin})")
        return "\n".join(lines)


class Classification(enum.Enum):
    """Three-way outcome of inference for one qualifier at one position
    (Section 4.4: must be const / must not be const / could be either)."""

    MUST = "must"
    MUST_NOT = "must-not"
    EITHER = "either"


@dataclass
class Solution:
    """Extreme solutions of an atomic constraint system."""

    lattice: QualifierLattice
    least: dict[QualVar, LatticeElement]
    greatest: dict[QualVar, LatticeElement]

    def least_of(self, var: QualVar) -> LatticeElement:
        """Least solution of a variable (bottom if unmentioned)."""
        return self.least.get(var, self.lattice.bottom)

    def greatest_of(self, var: QualVar) -> LatticeElement:
        """Greatest solution of a variable (top if unmentioned)."""
        return self.greatest.get(var, self.lattice.top)

    def classify(self, var: QualVar, qualifier: str) -> Classification:
        """Classify a variable with respect to one qualifier by name.

        For a positive qualifier q: MUST if the least solution contains q,
        MUST_NOT if the greatest solution lacks it, EITHER otherwise.  For
        a negative qualifier the roles of the extremes swap (a negative
        qualifier present moves the element *down* the lattice).
        """
        q = self.lattice.qualifier(qualifier)
        lo, hi = self.least_of(var), self.greatest_of(var)
        if q.positive:
            if lo.has(q):
                return Classification.MUST
            if not hi.has(q):
                return Classification.MUST_NOT
        else:
            if hi.has(q):
                return Classification.MUST
            if not lo.has(q):
                return Classification.MUST_NOT
        return Classification.EITHER

    def is_unconstrained(self, var: QualVar) -> bool:
        """Whether the variable ranges over the whole lattice."""
        return (
            self.least_of(var) == self.lattice.bottom
            and self.greatest_of(var) == self.lattice.top
        )


def _as_element(q: QualVar | LatticeElement) -> LatticeElement | None:
    return q if isinstance(q, LatticeElement) else None


def solve(
    constraints: Iterable[QualConstraint],
    lattice: QualifierLattice,
    extra_vars: Iterable[QualVar] = (),
) -> Solution:
    """Solve an atomic constraint system over ``lattice``.

    Returns the least and greatest solutions; raises
    :class:`UnsatisfiableError` if none exists.  ``extra_vars`` names
    variables that should appear in the solution even if no constraint
    mentions them (they solve to [bottom, top]).
    """
    constraint_list = list(constraints)

    # Adjacency: succs[v] = variables w with an edge v <= w,
    #            preds[v] = variables u with an edge u <= v.
    # Each edge remembers the constraint that created it, so failures can
    # be explained as a path through the program.
    succs: dict[QualVar, list[tuple[QualVar, QualConstraint]]] = defaultdict(list)
    preds: dict[QualVar, list[tuple[QualVar, QualConstraint]]] = defaultdict(list)
    lower: dict[QualVar, LatticeElement] = {}
    upper: dict[QualVar, LatticeElement] = {}
    lower_origins: dict[QualVar, QualConstraint] = {}
    upper_origins: dict[QualVar, list[QualConstraint]] = defaultdict(list)
    variables: set[QualVar] = set(extra_vars)

    for c in constraint_list:
        lhs_const, rhs_const = _as_element(c.lhs), _as_element(c.rhs)
        if lhs_const is not None and rhs_const is not None:
            if not lattice.leq(lhs_const, rhs_const):
                raise UnsatisfiableError(c, lhs_const, rhs_const)
        elif lhs_const is not None:
            assert isinstance(c.rhs, QualVar)
            variables.add(c.rhs)
            joined = lattice.join(lower.get(c.rhs, lattice.bottom), lhs_const)
            if joined != lower.get(c.rhs, lattice.bottom):
                lower_origins[c.rhs] = c
            lower[c.rhs] = joined
        elif rhs_const is not None:
            assert isinstance(c.lhs, QualVar)
            variables.add(c.lhs)
            upper[c.lhs] = lattice.meet(upper.get(c.lhs, lattice.top), rhs_const)
            upper_origins[c.lhs].append(c)
        else:
            assert isinstance(c.lhs, QualVar) and isinstance(c.rhs, QualVar)
            variables.add(c.lhs)
            variables.add(c.rhs)
            succs[c.lhs].append((c.rhs, c))
            preds[c.rhs].append((c.lhs, c))

    least, lower_pred = _propagate(variables, succs, lower, lattice, up=True)
    greatest, upper_pred = _propagate(variables, preds, upper, lattice, up=False)

    # Satisfiability: every variable's forced lower bound must sit below
    # its forced upper bound.
    for var in variables:
        lo = least.get(var, lattice.bottom)
        hi = greatest.get(var, lattice.top)
        if not lattice.leq(lo, hi):
            path = _explain_path(
                var, lower_pred, upper_pred, lower_origins, upper_origins
            )
            witnesses = upper_origins.get(var)
            witness = (
                path[-1]
                if path
                else (
                    witnesses[0]
                    if witnesses
                    else QualConstraint(var, hi, Origin("derived bound"))
                )
            )
            raise UnsatisfiableError(witness, lo, hi, path)

    return Solution(lattice, least, greatest)


def _explain_path(
    var: QualVar,
    lower_pred: Mapping[QualVar, tuple[QualVar, QualConstraint]],
    upper_pred: Mapping[QualVar, tuple[QualVar, QualConstraint]],
    lower_origins: Mapping[QualVar, QualConstraint],
    upper_origins: Mapping[QualVar, list[QualConstraint]],
) -> list[QualConstraint]:
    """Reconstruct source-constant -> ... -> var -> ... -> sink-constant."""
    down: list[QualConstraint] = []
    cursor = var
    seen = {cursor}
    while cursor in lower_pred:
        origin_var, constraint = lower_pred[cursor]
        down.append(constraint)
        cursor = origin_var
        if cursor in seen:
            break
        seen.add(cursor)
    if cursor in lower_origins:
        down.append(lower_origins[cursor])
    down.reverse()

    up: list[QualConstraint] = []
    cursor = var
    seen = {cursor}
    while cursor in upper_pred:
        origin_var, constraint = upper_pred[cursor]
        up.append(constraint)
        cursor = origin_var
        if cursor in seen:
            break
        seen.add(cursor)
    if upper_origins.get(cursor):
        up.append(upper_origins[cursor][0])
    return down + up


def _propagate(
    variables: set[QualVar],
    edges: Mapping[QualVar, list[tuple[QualVar, QualConstraint]]],
    init: Mapping[QualVar, LatticeElement],
    lattice: QualifierLattice,
    up: bool,
) -> tuple[dict[QualVar, LatticeElement], dict[QualVar, tuple[QualVar, QualConstraint]]]:
    """Worklist fixpoint with provenance.

    With ``up=True`` computes the least solution: values start at bottom
    (or the variable's constant lower bound) and flow along edges via join.
    With ``up=False`` computes the greatest solution dually via meet.
    Returns the values plus, per variable, the (predecessor, constraint)
    whose propagation last changed it — enough to walk a blame path.
    """
    default = lattice.bottom if up else lattice.top
    combine = lattice.join if up else lattice.meet
    values: dict[QualVar, LatticeElement] = {
        v: init.get(v, default) for v in variables
    }
    provenance: dict[QualVar, tuple[QualVar, QualConstraint]] = {}
    work = deque(v for v in variables if values[v] != default)
    queued = set(work)
    while work:
        v = work.popleft()
        queued.discard(v)
        value = values[v]
        for w, constraint in edges.get(v, ()):
            merged = combine(values[w], value)
            if merged != values[w]:
                values[w] = merged
                provenance[w] = (v, constraint)
                if w not in queued:
                    work.append(w)
                    queued.add(w)
    return values, provenance


def satisfiable(
    constraints: Iterable[QualConstraint], lattice: QualifierLattice
) -> bool:
    """Whether the atomic system has any solution."""
    try:
        solve(constraints, lattice)
    except UnsatisfiableError:
        return False
    return True


def check_ground(
    constraints: Iterable[QualConstraint],
    lattice: QualifierLattice,
    assignment: Mapping[QualVar, LatticeElement],
) -> QualConstraint | None:
    """Check a candidate assignment; return the first violated constraint.

    Used by property-based tests to validate that solver solutions really
    satisfy the system, and by the checking (non-inference) pipeline.
    """
    def value(q: QualVar | LatticeElement) -> LatticeElement:
        if isinstance(q, LatticeElement):
            return q
        return assignment.get(q, lattice.bottom)

    for c in constraints:
        if not lattice.leq(value(c.lhs), value(c.rhs)):
            return c
    return None
