"""Core qualifier-inference framework from *A Theory of Type Qualifiers*.

The subpackage is organised as the paper presents the system:

* :mod:`repro.qual.lattice` — qualifiers and the product qualifier lattice
  (Definitions 1 and 2).
* :mod:`repro.qual.qualifiers` — the paper's standard qualifier vocabulary
  (const, nonzero, dynamic, nonnull, tainted, sorted, local).
* :mod:`repro.qual.qtypes` — standard and qualified types, the strip /
  bottom-embedding translations, and the ``sp`` spread operator.
* :mod:`repro.qual.subtype` — structural subtyping rules and their
  decomposition into atomic constraints (including the deliberately
  unsound covariant-ref rule for the ablation study).
* :mod:`repro.qual.constraints` — the constraint language with origins.
* :mod:`repro.qual.solver` — the linear-time atomic-constraint solver with
  least/greatest solutions and must / must-not / either classification.
* :mod:`repro.qual.wellformed` — per-qualifier well-formedness conditions.
* :mod:`repro.qual.poly` — polymorphic constrained qualifier types.
"""

from .lattice import (
    LatticeElement,
    LatticeError,
    Polarity,
    Qualifier,
    QualifierLattice,
    negative,
    positive,
    product,
    two_point,
)
from .qualifiers import (
    ALL_QUALIFIERS,
    ALLOC,
    CONST,
    DYNAMIC,
    FREED,
    LOCAL,
    NONNULL,
    NONZERO,
    RELEASED,
    SORTED,
    TAINTED,
    binding_time_lattice,
    const_lattice,
    const_nonzero_lattice,
    make_lattice,
    nonnull_lattice,
    paper_figure2_lattice,
    resource_lattice,
    sorted_lattice,
    taint_lattice,
)
from .qtypes import (
    FUN,
    INT,
    LIST,
    PAIR,
    QCon,
    QType,
    Qual,
    QualVar,
    REF,
    ShapeVar,
    StdCon,
    StdType,
    StdVar,
    STD_INT,
    STD_UNIT,
    TypeConstructor,
    UNIT,
    Variance,
    apply_qual_subst,
    embed_bottom,
    embed_const,
    format_qtype,
    fresh_qual_var,
    q_fun,
    q_int,
    q_ref,
    q_unit,
    q_var,
    qt,
    qual_vars,
    quals_of,
    same_shape,
    spread,
    std_fun,
    std_ref,
    strip,
)
from .constraints import (
    ConstraintSet,
    Origin,
    QualConstraint,
    SubtypeConstraint,
)
from .subtype import (
    ShapeMismatch,
    decompose,
    decompose_all,
    is_equal,
    is_subtype,
    unsound_ref_decompose,
)
from .solver import (
    Classification,
    Solution,
    UnsatisfiableError,
    check_ground,
    satisfiable,
    solve,
)
from .wellformed import (
    ChildQualLeqParent,
    OnlyOnConstructors,
    ParentQualLeqChild,
    Violation,
    generate,
    is_wellformed,
    violations,
)
from .poly import (
    QualScheme,
    generalize,
    minimize_scheme,
    monomorphic,
    rename_constraints,
    restrict_constraints,
    simplify_scheme,
)

__all__ = [name for name in dir() if not name.startswith("_")]
