"""Well-formedness conditions on qualified types (paper Sections 1 and 2).

Each qualifier may come with rules restricting which qualified types are
meaningful.  The paper's running example is binding-time analysis: nothing
``dynamic`` may appear inside a value that is ``static``, so the type
``static (dynamic a -> dynamic b)`` is ill-formed.  Another kind of
condition restricts which constructors a qualifier may decorate at all
(``const`` only qualifies updateable references; ``nonzero`` only
integers).

Rules come in two flavours:

* :class:`ChildQualLeqParent` / :class:`ParentQualLeqChild` — ordering
  conditions between a constructor's qualifier and its children's
  qualifiers, expressed as ordinary atomic constraints so they integrate
  with inference (a single worklist solve enforces them).
* :class:`OnlyOnConstructors` — a qualifier may only appear on a given set
  of constructors; elsewhere the position receives the upper bound
  ``negate(q)`` (for positive q) or lower bound (for negative q).

:func:`generate` emits the atomic constraints a type's structure demands;
:func:`violations` checks a *ground* type directly and reports each
offence, which is what the checking (non-inference) pipeline and the tests
use.

Ordering rules relate whole lattice elements.  Because the qualifier
lattice is a product of independent two-point lattices and every atomic
constraint decomposes coordinatewise, applications that need an ordering
on just one qualifier run that qualifier in its own lattice (as all the
``repro.apps`` instances do) — this loses no generality and keeps the
solver a plain graph fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from .constraints import Origin, QualConstraint, UNKNOWN_ORIGIN
from .lattice import LatticeElement, QualifierLattice
from .qtypes import QCon, QType, TypeConstructor, format_qtype


class WellFormednessRule(Protocol):
    """A rule contributes atomic constraints for each type node."""

    def constraints_for(
        self, node: QType, lattice: QualifierLattice, origin: Origin
    ) -> list[QualConstraint]:
        """Constraints this rule imposes on ``node`` (and its children)."""
        ...

    def describe(self) -> str:
        """Human-readable statement of the rule."""
        ...


@dataclass(frozen=True)
class ChildQualLeqParent:
    """Every child's qualifier must lie below its parent's.

    With a single positive qualifier q this says: if the parent lacks q,
    every child lacks q — the binding-time condition ("nothing dynamic
    inside a static value") with q = dynamic.
    """

    qualifier: str

    def constraints_for(
        self, node: QType, lattice: QualifierLattice, origin: Origin
    ) -> list[QualConstraint]:
        out = []
        for child in node.args:
            out.append(QualConstraint(child.qual, node.qual, origin))
        return out

    def describe(self) -> str:
        return f"no {self.qualifier} may appear under a value lacking {self.qualifier}"


@dataclass(frozen=True)
class ParentQualLeqChild:
    """Every child's qualifier must lie above its parent's (dual rule)."""

    qualifier: str

    def constraints_for(
        self, node: QType, lattice: QualifierLattice, origin: Origin
    ) -> list[QualConstraint]:
        out = []
        for child in node.args:
            out.append(QualConstraint(node.qual, child.qual, origin))
        return out

    def describe(self) -> str:
        return f"{self.qualifier} on a value propagates to everything it contains"


@dataclass(frozen=True)
class OnlyOnConstructors:
    """A qualifier may decorate only the named constructors.

    On any other constructor the qualifier is pinned to its absent state:
    positions get the upper bound ``negate(q)`` for positive q (the element
    that definitely lacks q) or the lower bound for negative q.
    """

    qualifier: str
    constructors: frozenset[str]

    def __init__(self, qualifier: str, constructors: Iterable[str | TypeConstructor]):
        names = frozenset(
            c.name if isinstance(c, TypeConstructor) else c for c in constructors
        )
        object.__setattr__(self, "qualifier", qualifier)
        object.__setattr__(self, "constructors", names)

    def constraints_for(
        self, node: QType, lattice: QualifierLattice, origin: Origin
    ) -> list[QualConstraint]:
        con = node.constructor
        if con is None or con.name in self.constructors:
            return []
        q = lattice.qualifier(self.qualifier)
        if q.positive:
            return [QualConstraint(node.qual, lattice.negate(self.qualifier), origin)]
        return [QualConstraint(lattice.negate(self.qualifier), node.qual, origin)]

    def describe(self) -> str:
        allowed = ", ".join(sorted(self.constructors))
        return f"{self.qualifier} may only qualify: {allowed}"


def generate(
    t: QType,
    rules: Sequence[WellFormednessRule],
    lattice: QualifierLattice,
    origin: Origin = UNKNOWN_ORIGIN,
) -> list[QualConstraint]:
    """Emit the atomic constraints all rules impose everywhere in ``t``."""
    out: list[QualConstraint] = []
    stack = [t]
    while stack:
        node = stack.pop()
        for rule in rules:
            out.extend(rule.constraints_for(node, lattice, origin))
        if isinstance(node.shape, QCon):
            stack.extend(node.shape.args)
    return out


@dataclass(frozen=True)
class Violation:
    """A well-formedness failure at a specific node of a ground type."""

    node: QType
    rule_description: str

    def __str__(self) -> str:
        return f"ill-formed type {format_qtype(self.node)}: {self.rule_description}"


def violations(
    t: QType, rules: Sequence[WellFormednessRule], lattice: QualifierLattice
) -> list[Violation]:
    """Check a ground qualified type; list every rule violation.

    All qualifier positions must be lattice elements (no variables).
    """
    out: list[Violation] = []
    stack = [t]
    while stack:
        node = stack.pop()
        for rule in rules:
            for c in rule.constraints_for(node, lattice, UNKNOWN_ORIGIN):
                if not isinstance(c.lhs, LatticeElement) or not isinstance(
                    c.rhs, LatticeElement
                ):
                    raise TypeError(
                        f"violations() requires a ground type; found variable in {c}"
                    )
                if not lattice.leq(c.lhs, c.rhs):
                    out.append(Violation(node, rule.describe()))
        if isinstance(node.shape, QCon):
            stack.extend(node.shape.args)
    return out


def is_wellformed(
    t: QType, rules: Sequence[WellFormednessRule], lattice: QualifierLattice
) -> bool:
    """Whether a ground qualified type satisfies all rules."""
    return not violations(t, rules, lattice)
