"""Flat-array (CSR) solver core with zero-copy serialisation.

The condensation pipeline of :mod:`repro.qual.solver` is already
algorithmically linear, but its state is a Python-object graph:
``QualVar`` keys in dicts, ``QualConstraint`` witnesses per edge,
per-solve adjacency lists of lists.  On a 10k-constraint chain the
solver spends most of its time allocating and hashing those objects —
and a warm cache start spends even longer *unpickling* them.

This module rebuilds the atomic system as flat integer arrays:

* ``uids[i]``          — variable uid per dense index ``i``;
* ``indptr``/``indices`` — the deduplicated variable/variable edge set
  in CSR form, rows sorted, ``indices[indptr[u]:indptr[u+1]]`` the
  successors of ``u`` in ascending order;
* ``lower[i]``/``upper[i]`` — folded constant bounds as lattice
  bitmasks (:mod:`repro.qual.lattice`'s integer kernel);
* ``name_offsets``/``names_blob`` — variable names as one UTF-8 blob
  with a CSR-style offset table, decoded **lazily** per index so a warm
  start only pays for the names diagnostics actually touch.

Condensation and the two topological propagation passes run as loops
over those arrays.  Two kernels implement the same pipeline:

* a **fast path** (:func:`fast_available`) using numpy +
  ``scipy.sparse.csgraph``: C-compiled Tarjan for the condensation,
  vectorised bound folding, and — the trick that removes the last
  Python-per-edge loop — bound propagation as multi-source
  *reachability*.  On the condensation DAG the final least value of a
  component is the join of the initial masks of every component that
  reaches it, and a join of masks decomposes into ``(OR & pos) |
  (AND & neg)``; with only a handful of distinct initial masks (a
  product lattice has few), one unweighted C ``dijkstra`` sweep per
  distinct mask computes the whole fixpoint.  The greatest solution is
  the dual meet over the transposed DAG.  A Python topological loop
  over the deduplicated DAG edges remains as the in-kernel fallback
  when a pathological system has too many distinct masks;
* a **stdlib path** on ``array('q')``/``memoryview`` buffers with the
  same iterative Tarjan the object solver uses, so environments without
  numpy (one CI matrix leg runs this way) get identical answers.

Both kernels compute the identical unique fixpoints as
:meth:`repro.qual.solver.IndexedSystem.solve` and
:func:`repro.qual.solver.solve_reference` — including identical
:class:`~repro.qual.solver.SolverStats` (``propagation_steps`` counts
an edge relaxation exactly when the object pipeline would have, i.e.
when the propagating component's final mask is non-extremal); the
testkit's ``flatcore`` oracle family and the hypothesis properties in
``tests/test_flatcore.py`` enforce that byte-for-byte.

Serialisation (:meth:`FlatSystem.to_bytes` /
:meth:`FlatSystem.from_buffer`) is a versioned binary section — a
struct header followed by the raw little-endian ``int64`` buffers — so
the analysis cache can ``mmap`` an entry and wrap the arrays zero-copy
(``numpy.frombuffer`` or ``memoryview.cast``) instead of unpickling an
object graph.  The solved least/greatest masks may be appended as an
optional section: the fixpoints are unique, so persisting them is the
same memoisation discipline the cache already applies to parsing and
constraint generation, and re-solving the mmapped system reproduces
them exactly (round-trip tested).

Layout (offsets 8-aligned, all integers little-endian)::

    header   "<4sHH13Q"  magic b"QFC2", version, flags,
                         n, m, lat_len, names_len,
                         constraints, edges_before, ground_checks,
                         constant_bounds, sccs, collapsed_sccs,
                         largest_scc, dag_edges, propagation_steps
    lattice  lat_len     qualifier signature (see
                         QualifierLattice.signature), padded to 8
    uids     n   * i64
    indptr   (n+1) * i64
    indices  m   * i64
    lower    n   * i64
    upper    n   * i64
    nameoff  (n+1) * i64
    names    names_len bytes, padded to 8
    sol_low  n * i64     (only when flags & FLAG_SOLUTION)
    sol_high n * i64     (only when flags & FLAG_SOLUTION)

The five SCC/DAG header counts are zero unless a solution section is
present (they describe the recorded solve).
"""

from __future__ import annotations

import os
import struct
import sys
from array import array
from typing import Iterable, Sequence

from .constraints import Origin, QualConstraint
from .lattice import LatticeElement, QualifierLattice
from .qtypes import QualVar
from .solver import (
    IndexedSystem,
    Solution,
    SolverStats,
    UnsatisfiableError,
)

__all__ = [
    "FlatSystem",
    "FlatSolution",
    "fast_available",
    "fits_flat",
    "flat_solve",
    "solve_indexed",
]

_MAGIC = b"QFC2"
_VERSION = 1
_HEADER = struct.Struct("<4sHH13Q")

#: A solved least/greatest section follows the system buffers.
FLAG_SOLUTION = 1
#: Variable uids are not unique (pathological hand-built systems);
#: rehydrated lookups must key on (uid, name) instead of uid alone.
FLAG_DUP_UIDS = 2

#: Above this many distinct initial component masks per direction the
#: reachability formulation stops paying (one dijkstra sweep per mask)
#: and the kernel falls back to its Python topological loop.
_REACH_MAX_MASKS = 8


def _probe_fast():
    """numpy + scipy.sparse.csgraph, or ``None`` (stdlib kernel only).

    ``REPRO_FLATCORE=stdlib`` forces the stdlib path even when numpy is
    importable, so the fallback kernel is testable on full installs.
    """
    if os.environ.get("REPRO_FLATCORE", "").lower() in {"stdlib", "slow", "off"}:
        return None
    try:
        import numpy as np
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import connected_components, dijkstra
    except Exception:
        return None
    return (np, csr_matrix, connected_components, dijkstra)


_FAST = _probe_fast()


def fast_available() -> bool:
    """Whether the numpy/scipy kernel is active."""
    return _FAST is not None


def fits_flat(lattice: QualifierLattice) -> bool:
    """Whether the lattice's bitmasks fit the signed-64-bit buffers."""
    return lattice._full_mask.bit_length() <= 62


# ---------------------------------------------------------------------------
# int64 buffer helpers (shared by both kernels and the serialiser)
# ---------------------------------------------------------------------------


def _i64_bytes(seq) -> bytes:
    """Little-endian int64 bytes of any int sequence."""
    if _FAST is not None:
        np = _FAST[0]
        if isinstance(seq, np.ndarray):
            return seq.astype("<i8", copy=False).tobytes()
    if isinstance(seq, array) and seq.typecode == "q":
        buf = seq
    else:
        buf = array("q", seq)
    if sys.byteorder != "little":  # pragma: no cover - exotic hosts
        buf = array("q", buf)
        buf.byteswap()
    return buf.tobytes()


def _wrap_i64(view: memoryview, offset: int, count: int):
    """Zero-copy int64 window over ``view`` (numpy array when the fast
    path is active, else a cast memoryview; big-endian hosts copy)."""
    end = offset + count * 8
    if end > len(view):
        raise ValueError(
            f"flat section overruns buffer: need {end} bytes, have {len(view)}"
        )
    window = view[offset:end]
    if _FAST is not None:
        np = _FAST[0]
        return np.frombuffer(window, dtype="<i8")
    if sys.byteorder == "little":
        return window.cast("q")
    out = array("q")  # pragma: no cover - exotic hosts
    out.frombytes(window.tobytes())
    out.byteswap()
    return out


def _pad8(n: int) -> int:
    return (8 - n % 8) % 8


def _csr_from_edges(n: int, edge_u: Sequence[int], edge_v: Sequence[int]):
    """Row-sorted CSR (stdlib lists) from parallel edge lists."""
    pairs = sorted(zip(edge_u, edge_v))
    indptr = [0] * (n + 1)
    for u, _ in pairs:
        indptr[u + 1] += 1
    for i in range(n):
        indptr[i + 1] += indptr[i]
    indices = [v for _, v in pairs]
    return indptr, indices


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


class _KernelResult:
    """Per-variable extreme masks plus pipeline-shape counters."""

    __slots__ = (
        "low",
        "high",
        "sccs",
        "collapsed",
        "largest",
        "dag_edges",
        "steps",
        "violation",
    )

    def __init__(self, low, high, sccs, collapsed, largest, dag_edges, steps, violation):
        self.low = low
        self.high = high
        self.sccs = sccs
        self.collapsed = collapsed
        self.largest = largest
        self.dag_edges = dag_edges
        self.steps = steps
        #: Lowest variable index whose forced lower bound exceeds its
        #: forced upper bound, or -1 when the system is satisfiable —
        #: the same variable IndexedSystem.solve blames first.
        self.violation = violation


def _dag_propagate_fast(ncomp, psrc, pdst, init, identity, pos, neg, joinlike):
    """Propagate initial component masks along the deduplicated DAG
    edges ``psrc -> pdst`` (already oriented in the direction values
    flow), returning the final per-component masks.

    Few distinct masks: one unweighted multi-source dijkstra per
    distinct mask gives its reachable set; folding ``(OR & pos) |
    (AND & neg)`` (join) or the dual (meet) over those sets *is* the
    fixpoint.  Many distinct masks: a Python loop over the edges in
    topological order (descending source label for joins — labels are
    reverse-topological — ascending for meets).
    """
    np, csr_matrix, _cc, dijkstra = _FAST
    masks = np.unique(init)
    masks = masks[masks != identity]
    if len(masks) <= _REACH_MAX_MASKS:
        graph = csr_matrix(
            (np.ones(len(psrc), dtype=np.int8), (psrc, pdst)), shape=(ncomp, ncomp)
        )
        or_acc = np.zeros(ncomp, dtype=np.int64)
        and_acc = np.full(ncomp, -1, dtype=np.int64)
        for mask in masks.tolist():
            sources = np.nonzero(init == mask)[0]
            dist = dijkstra(
                graph,
                directed=True,
                indices=sources,
                min_only=True,
                unweighted=True,
            )
            reached = np.isfinite(dist)
            or_acc[reached] |= mask
            and_acc[reached] &= mask
        if joinlike:
            return (or_acc & pos) | (and_acc & neg)
        return (and_acc & pos) | (or_acc & neg)

    order = np.argsort(psrc, kind="stable")
    src_list = psrc[order].tolist()
    dst_list = pdst[order].tolist()
    values = init.tolist()
    indexes = range(len(src_list) - 1, -1, -1) if joinlike else range(len(src_list))
    for k in indexes:
        a = values[src_list[k]]
        if a == identity:
            continue
        d = dst_list[k]
        b = values[d]
        if joinlike:
            merged = ((a | b) & pos) | (a & b & neg)
        else:
            merged = (a & b & pos) | ((a | b) & neg)
        if merged != b:
            values[d] = merged
    return np.array(values, dtype=np.int64)


def _kernel_fast(
    n: int,
    eu,
    ev,
    low_idx,
    low_masks,
    up_idx,
    up_masks,
    lattice: QualifierLattice,
    csr: tuple | None = None,
):
    """numpy/scipy condensation pipeline; ``None`` if the scipy label
    order ever stops being reverse-topological (never observed — the
    caller then falls back to the stdlib Tarjan)."""
    np, csr_matrix, connected_components, _dijkstra = _FAST
    pos = lattice._pos_mask
    neg = lattice._neg_mask
    bottom = neg
    top = pos
    m = len(ev)

    if m:
        if csr is not None:
            indptr, indices = csr
            graph = csr_matrix(
                (np.ones(m, dtype=np.int8), indices, indptr), shape=(n, n)
            )
        else:
            graph = csr_matrix(
                (np.ones(m, dtype=np.int8), (eu, ev)), shape=(n, n)
            )
        ncomp, labels = connected_components(
            graph, directed=True, connection="strong", return_labels=True
        )
        ncomp = int(ncomp)
        labels = labels.astype(np.int64, copy=False)
    else:
        ncomp = n
        labels = np.arange(n, dtype=np.int64)

    # Fold the sparse constant bounds into per-component masks.  A join
    # over masks decomposes into (OR & pos) | (AND & neg) and a meet
    # into (AND & pos) | (OR & neg), so the folds vectorise as scattered
    # bitwise reductions; components with no bound land on bottom/top.
    comp_low = np.full(ncomp, bottom, dtype=np.int64)
    have_lower = low_idx is not None and len(low_idx) > 0
    if have_lower:
        lab = labels[low_idx]
        or_acc = np.zeros(ncomp, dtype=np.int64)
        np.bitwise_or.at(or_acc, lab, low_masks)
        and_acc = np.full(ncomp, -1, dtype=np.int64)
        np.bitwise_and.at(and_acc, lab, low_masks)
        comp_low = (or_acc & pos) | (and_acc & neg)

    comp_high = np.full(ncomp, top, dtype=np.int64)
    have_upper = up_idx is not None and len(up_idx) > 0
    if have_upper:
        lab = labels[up_idx]
        and_acc = np.full(ncomp, -1, dtype=np.int64)
        np.bitwise_and.at(and_acc, lab, up_masks)
        or_acc = np.zeros(ncomp, dtype=np.int64)
        np.bitwise_or.at(or_acc, lab, up_masks)
        comp_high = (and_acc & pos) | (or_acc & neg)

    # Condensation DAG: deduplicated inter-component edges.  scipy's
    # strong labels satisfy label(u) > label(v) along every
    # inter-component edge (reverse-topological completion order, the
    # same invariant our Tarjan produces); this is verified, not
    # assumed, with the stdlib kernel as the fallback.
    dag_edges = 0
    dcu = dcv = None
    if m:
        lu = labels[eu]
        lv = labels[ev]
        keep = lu != lv
        if bool(keep.any()):
            ku = lu[keep]
            kv = lv[keep]
            if not bool((ku > kv).all()):
                return None
            codes = np.unique(ku * np.int64(ncomp) + kv)
            dag_edges = len(codes)
            dcu = codes // ncomp
            dcv = codes - dcu * ncomp

    # Propagate and count relaxations.  In topological processing order
    # every component's mask is final before it propagates, so the
    # object pipeline's step counter — one step per deduplicated DAG
    # edge whose propagating component is non-extremal at visit time —
    # equals a count over *final* masks, which vectorises.
    steps = 0
    if dag_edges and have_lower and not bool((comp_low == bottom).all()):
        comp_low = _dag_propagate_fast(
            ncomp, dcu, dcv, comp_low, bottom, pos, neg, joinlike=True
        )
        steps += int((comp_low[dcu] != bottom).sum())
    if dag_edges and have_upper and not bool((comp_high == top).all()):
        comp_high = _dag_propagate_fast(
            ncomp, dcv, dcu, comp_high, top, pos, neg, joinlike=False
        )
        steps += int((comp_high[dcv] != top).sum())

    low = comp_low[labels]
    high = comp_high[labels]
    viol = (low & ~high & pos) | (high & ~low & neg)
    nz = np.nonzero(viol)[0]
    violation = int(nz[0]) if len(nz) else -1

    sizes = np.bincount(labels, minlength=ncomp) if n else np.zeros(0, dtype=np.int64)
    collapsed = int((sizes > 1).sum()) if n else 0
    largest = int(sizes.max()) if n else 0
    return _KernelResult(low, high, ncomp, collapsed, largest, dag_edges, steps, violation)


def _kernel_slow(
    n: int,
    indptr: Sequence[int],
    indices: Sequence[int],
    low_items: Iterable[tuple[int, int]],
    up_items: Iterable[tuple[int, int]],
    lattice: QualifierLattice,
) -> _KernelResult:
    """Pure-stdlib kernel: iterative Tarjan over the CSR arrays, then the
    same deduplicated-DAG propagation passes as the fast path."""
    pos = lattice._pos_mask
    neg = lattice._neg_mask
    bottom = neg
    top = pos

    comp = _tarjan_csr(n, indptr, indices)
    ncomp = (max(comp) + 1) if n else 0
    sizes = [0] * ncomp
    for c in comp:
        sizes[c] += 1

    comp_low = [bottom] * ncomp
    have_lower = False
    for i, mask in low_items:
        have_lower = True
        ci = comp[i]
        a = comp_low[ci]
        comp_low[ci] = ((a | mask) & pos) | (a & mask & neg)

    comp_high = [top] * ncomp
    have_upper = False
    for i, mask in up_items:
        have_upper = True
        ci = comp[i]
        a = comp_high[ci]
        comp_high[ci] = (a & mask & pos) | ((a | mask) & neg)

    pairs: set[tuple[int, int]] = set()
    for u in range(n):
        cu = comp[u]
        for k in range(indptr[u], indptr[u + 1]):
            cv = comp[indices[k]]
            if cu != cv:
                pairs.add((cu, cv))
    dag = sorted(pairs)
    dag_edges = len(dag)

    steps = 0
    if dag and have_lower:
        for k in range(dag_edges - 1, -1, -1):
            u, v = dag[k]
            a = comp_low[u]
            if a == bottom:
                continue
            steps += 1
            b = comp_low[v]
            merged = ((a | b) & pos) | (a & b & neg)
            if merged != b:
                comp_low[v] = merged

    if dag and have_upper:
        for u, v in sorted(pairs, key=lambda p: (p[1], p[0])):
            a = comp_high[v]
            if a == top:
                continue
            steps += 1
            b = comp_high[u]
            merged = (a & b & pos) | ((a | b) & neg)
            if merged != b:
                comp_high[u] = merged

    low = [comp_low[comp[i]] for i in range(n)]
    high = [comp_high[comp[i]] for i in range(n)]
    violation = -1
    for i in range(n):
        a, b = low[i], high[i]
        if (a & ~b & pos) | (b & ~a & neg):
            violation = i
            break

    collapsed = sum(1 for s in sizes if s > 1)
    largest = max(sizes, default=0)
    return _KernelResult(low, high, ncomp, collapsed, largest, dag_edges, steps, violation)


def _tarjan_csr(n: int, indptr: Sequence[int], indices: Sequence[int]) -> list[int]:
    """Iterative Tarjan over CSR arrays; component ids in completion
    order (every inter-component edge goes from a higher id to a lower
    one, the invariant both propagation passes rely on)."""
    index_of = [-1] * n
    low = [0] * n
    on_stack = bytearray(n)
    stack: list[int] = []
    comp = [-1] * n
    ncomp = 0
    counter = 0
    for root in range(n):
        if index_of[root] != -1:
            continue
        work: list[list[int]] = [[root, indptr[root]]]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        while work:
            frame = work[-1]
            v, pi = frame
            descended = False
            end = indptr[v + 1]
            while pi < end:
                w = indices[pi]
                pi += 1
                if index_of[w] == -1:
                    frame[1] = pi
                    index_of[w] = low[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = 1
                    work.append([w, indptr[w]])
                    descended = True
                    break
                if on_stack[w] and index_of[w] < low[v]:
                    low[v] = index_of[w]
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]
            if low[v] == index_of[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    comp[w] = ncomp
                    if w == v:
                        break
                ncomp += 1
    return comp


# ---------------------------------------------------------------------------
# The flat system
# ---------------------------------------------------------------------------


class _LiveIndex:
    """Variable index over a live :class:`IndexedSystem` snapshot — the
    no-rehydration counterpart of :class:`FlatSystem` for solutions of
    in-memory solves (the variable objects already exist)."""

    __slots__ = ("n", "_vars", "_var_index")

    def __init__(self, vars_: list[QualVar], var_index: dict[QualVar, int]):
        self.n = len(vars_)
        self._vars = vars_
        self._var_index = var_index

    def var(self, i: int) -> QualVar:
        return self._vars[i]

    def index_of(self, var: QualVar) -> int | None:
        return self._var_index.get(var)


def _stats_from(counts, n: int, m: int, result: _KernelResult) -> SolverStats:
    constraints, edges_before, ground_checks, constant_bounds = counts
    return SolverStats(
        variables=n,
        constraints=constraints,
        ground_checks=ground_checks,
        constant_bounds=constant_bounds,
        edges_before=edges_before,
        edges_after=m,
        sccs=result.sccs,
        collapsed_sccs=result.collapsed,
        largest_scc=result.largest,
        dag_edges=result.dag_edges,
        propagation_steps=result.steps,
    )


class FlatSystem:
    """An atomic constraint system as flat int64 buffers (see module
    docstring for the exact layout).

    Built either from a live :class:`~repro.qual.solver.IndexedSystem`
    (:meth:`from_indexed` — variable objects retained, no rehydration
    needed) or zero-copy over a serialised buffer
    (:meth:`from_buffer` — variables rehydrated lazily on demand).
    """

    __slots__ = (
        "lattice",
        "n",
        "m",
        "uids",
        "indptr",
        "indices",
        "lower",
        "upper",
        "name_offsets",
        "names_blob",
        "counts",
        "sol_low",
        "sol_high",
        "sol_stats",
        "dup_uids",
        "_vars",
        "_buf",
        "_name_cache",
        "_var_cache",
        "_uid_index",
    )

    def __init__(
        self,
        lattice: QualifierLattice,
        uids,
        indptr,
        indices,
        lower,
        upper,
        name_offsets,
        names_blob,
        counts: tuple[int, int, int, int],
        *,
        vars_: list[QualVar] | None = None,
        dup_uids: bool = False,
        buf=None,
    ) -> None:
        self.lattice = lattice
        self.n = len(uids)
        self.m = len(indices)
        self.uids = uids
        self.indptr = indptr
        self.indices = indices
        self.lower = lower
        self.upper = upper
        self.name_offsets = name_offsets
        self.names_blob = names_blob
        #: (constraints, edges_before, ground_checks, constant_bounds)
        self.counts = counts
        self.sol_low = None
        self.sol_high = None
        self.sol_stats: tuple[int, int, int, int, int] | None = None
        self.dup_uids = dup_uids
        self._vars = vars_
        self._buf = buf  # keepalive for zero-copy views (mmap)
        self._name_cache: dict[int, str] = {}
        self._var_cache: dict[int, QualVar] = {}
        self._uid_index: dict | None = None

    # -- construction --------------------------------------------------
    @classmethod
    def from_indexed(cls, system: IndexedSystem) -> "FlatSystem":
        """Snapshot an indexed system (including any extra variables the
        caller already registered via :meth:`IndexedSystem.add_var`)."""
        lattice = system.lattice
        if not fits_flat(lattice):
            raise ValueError(
                f"lattice {lattice} needs more than 62 mask bits; "
                "the flat core stores masks as signed int64"
            )
        vars_ = list(system._vars)
        n = len(vars_)
        m = len(system._edge_u)

        if _FAST is not None and m:
            np = _FAST[0]
            eu = np.array(system._edge_u, dtype=np.int64)
            ev = np.array(system._edge_v, dtype=np.int64)
            order = np.lexsort((ev, eu))
            eu = eu[order]
            indices = ev[order]
            indptr = np.zeros(n + 1, dtype=np.int64)
            indptr[1:] = np.cumsum(np.bincount(eu, minlength=n))
        else:
            indptr_l, indices_l = _csr_from_edges(n, system._edge_u, system._edge_v)
            indptr = array("q", indptr_l)
            indices = array("q", indices_l)

        bottom = lattice.bottom.mask
        top = lattice.top.mask
        lower = array("q", [bottom]) * n if n else array("q")
        upper = array("q", [top]) * n if n else array("q")
        for i, mask in system._lower_mask.items():
            lower[i] = mask
        for i, mask in system._upper_mask.items():
            upper[i] = mask

        uid_list = [v.uid for v in vars_]
        uids = array("q", uid_list)
        offsets = array("q", [0]) * (n + 1)
        chunks = []
        total = 0
        for i, v in enumerate(vars_):
            encoded = v.name.encode("utf-8")
            chunks.append(encoded)
            total += len(encoded)
            offsets[i + 1] = total
        names_blob = b"".join(chunks)

        counts = (
            system._constraints,
            system._edges_before,
            system._ground_checks,
            system._constant_bounds,
        )
        return cls(
            lattice,
            uids,
            indptr,
            indices,
            lower,
            upper,
            offsets,
            names_blob,
            counts,
            vars_=vars_,
            dup_uids=len(set(uid_list)) != n,
        )

    @classmethod
    def from_constraints(
        cls,
        constraints: Iterable[QualConstraint],
        lattice: QualifierLattice,
        extra_vars: Iterable[QualVar] = (),
    ) -> "FlatSystem":
        system = IndexedSystem(lattice)
        system.add_many(constraints)
        for var in extra_vars:
            system.add_var(var)
        return cls.from_indexed(system)

    # -- lazy rehydration ----------------------------------------------
    def name(self, i: int) -> str:
        """Variable name at dense index ``i`` (decoded once, memoised)."""
        cached = self._name_cache.get(i)
        if cached is None:
            off = self.name_offsets
            cached = bytes(self.names_blob[off[i] : off[i + 1]]).decode("utf-8")
            self._name_cache[i] = cached
        return cached

    def var(self, i: int) -> QualVar:
        """The (possibly rehydrated) variable at dense index ``i``."""
        if self._vars is not None:
            return self._vars[i]
        cached = self._var_cache.get(i)
        if cached is None:
            cached = QualVar(self.name(i), int(self.uids[i]))
            self._var_cache[i] = cached
        return cached

    def index_of(self, var: QualVar) -> int | None:
        """Dense index of a variable, or ``None`` if unmentioned."""
        if self._uid_index is None:
            if self.dup_uids:
                self._uid_index = {
                    (int(self.uids[i]), self.name(i)): i for i in range(self.n)
                }
            else:
                self._uid_index = {int(self.uids[i]): i for i in range(self.n)}
        if self.dup_uids:
            return self._uid_index.get((var.uid, var.name))
        i = self._uid_index.get(var.uid)
        if i is None or self.name(i) != var.name:
            return None
        return i

    # -- solving -------------------------------------------------------
    def solve_masks(self) -> _KernelResult:
        """Run condensation + propagation over the buffers."""
        n = self.n
        if _FAST is not None:
            np = _FAST[0]
            indptr = np.asarray(self.indptr, dtype=np.int64)
            indices = np.asarray(self.indices, dtype=np.int64)
            eu = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
            lower = np.asarray(self.lower, dtype=np.int64)
            upper = np.asarray(self.upper, dtype=np.int64)
            low_idx = np.nonzero(lower != self.lattice.bottom.mask)[0]
            up_idx = np.nonzero(upper != self.lattice.top.mask)[0]
            result = _kernel_fast(
                n,
                eu,
                indices,
                low_idx,
                lower[low_idx],
                up_idx,
                upper[up_idx],
                self.lattice,
                csr=(indptr, indices),
            )
            if result is not None:
                return result
        bottom = self.lattice.bottom.mask
        top = self.lattice.top.mask
        return _kernel_slow(
            n,
            self.indptr,
            self.indices,
            ((i, m) for i, m in enumerate(self.lower) if m != bottom),
            ((i, m) for i, m in enumerate(self.upper) if m != top),
            self.lattice,
        )

    def solve(self) -> "FlatSolution":
        """Solve and wrap the result lazily; raises
        :class:`~repro.qual.solver.UnsatisfiableError` (with a synthetic
        witness — serialised systems carry no constraint provenance)."""
        result = self.solve_masks()
        if result.violation >= 0:
            i = result.violation
            lo = self.lattice.from_mask(int(result.low[i]))
            hi = self.lattice.from_mask(int(result.high[i]))
            witness = QualConstraint(self.var(i), hi, Origin("flat-core derived bound"))
            raise UnsatisfiableError(witness, lo, hi)
        return FlatSolution(
            self.lattice,
            self,
            result.low,
            result.high,
            _stats_from(self.counts, self.n, self.m, result),
        )

    def attach_solution(self) -> "FlatSolution":
        """Solve and record the solution buffers for serialisation."""
        solution = self.solve()
        self.sol_low = solution._low
        self.sol_high = solution._high
        stats = solution.stats
        assert stats is not None
        self.sol_stats = (
            stats.sccs,
            stats.collapsed_sccs,
            stats.largest_scc,
            stats.dag_edges,
            stats.propagation_steps,
        )
        return solution

    def stored_solution(self) -> "FlatSolution | None":
        """The recorded solution section, or ``None`` if absent."""
        if self.sol_low is None or self.sol_high is None:
            return None
        stats = None
        if self.sol_stats is not None:
            sccs, collapsed, largest, dag_edges, steps = self.sol_stats
            constraints, edges_before, ground_checks, constant_bounds = self.counts
            stats = SolverStats(
                variables=self.n,
                constraints=constraints,
                ground_checks=ground_checks,
                constant_bounds=constant_bounds,
                edges_before=edges_before,
                edges_after=self.m,
                sccs=sccs,
                collapsed_sccs=collapsed,
                largest_scc=largest,
                dag_edges=dag_edges,
                propagation_steps=steps,
            )
        return FlatSolution(self.lattice, self, self.sol_low, self.sol_high, stats)

    # -- serialisation -------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise; deterministic for a given system state."""
        lat_sig = self.lattice.signature().encode("utf-8")
        flags = 0
        if self.sol_low is not None:
            flags |= FLAG_SOLUTION
        if self.dup_uids:
            flags |= FLAG_DUP_UIDS
        sol_stats = self.sol_stats or (0, 0, 0, 0, 0)
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            flags,
            self.n,
            self.m,
            len(lat_sig),
            len(self.names_blob),
            *self.counts,
            *sol_stats,
        )
        parts = [
            header,
            lat_sig,
            b"\0" * _pad8(len(lat_sig)),
            _i64_bytes(self.uids),
            _i64_bytes(self.indptr),
            _i64_bytes(self.indices),
            _i64_bytes(self.lower),
            _i64_bytes(self.upper),
            _i64_bytes(self.name_offsets),
            bytes(self.names_blob),
            b"\0" * _pad8(len(self.names_blob)),
        ]
        if flags & FLAG_SOLUTION:
            parts.append(_i64_bytes(self.sol_low))
            parts.append(_i64_bytes(self.sol_high))
        return b"".join(parts)

    @classmethod
    def from_buffer(cls, buf) -> "FlatSystem":
        """Wrap a serialised system zero-copy.

        ``buf`` may be ``bytes``, a ``memoryview``, or an ``mmap`` — the
        returned system keeps a reference so the mapping stays alive.
        Raises ``ValueError``/``struct.error`` on malformed input (the
        cache treats both as a miss).
        """
        view = memoryview(buf)
        if len(view) < _HEADER.size:
            raise ValueError(f"flat buffer too short: {len(view)} bytes")
        (
            magic,
            version,
            flags,
            n,
            m,
            lat_len,
            names_len,
            constraints,
            edges_before,
            ground_checks,
            constant_bounds,
            sccs,
            collapsed,
            largest,
            dag_edges,
            steps,
        ) = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ValueError(f"bad flat magic: {magic!r}")
        if version != _VERSION:
            raise ValueError(f"unsupported flat version: {version}")

        offset = _HEADER.size
        if offset + lat_len > len(view):
            raise ValueError("lattice signature overruns buffer")
        lat_sig = bytes(view[offset : offset + lat_len]).decode("utf-8")
        lattice = QualifierLattice.from_signature(lat_sig)
        offset += lat_len + _pad8(lat_len)

        uids = _wrap_i64(view, offset, n)
        offset += n * 8
        indptr = _wrap_i64(view, offset, n + 1)
        offset += (n + 1) * 8
        indices = _wrap_i64(view, offset, m)
        offset += m * 8
        lower = _wrap_i64(view, offset, n)
        offset += n * 8
        upper = _wrap_i64(view, offset, n)
        offset += n * 8
        name_offsets = _wrap_i64(view, offset, n + 1)
        offset += (n + 1) * 8
        if offset + names_len > len(view):
            raise ValueError("name blob overruns buffer")
        names_blob = view[offset : offset + names_len]
        offset += names_len + _pad8(names_len)

        if n and int(name_offsets[n]) != names_len:
            raise ValueError("name offset table inconsistent with blob length")

        system = cls(
            lattice,
            uids,
            indptr,
            indices,
            lower,
            upper,
            name_offsets,
            names_blob,
            (constraints, edges_before, ground_checks, constant_bounds),
            dup_uids=bool(flags & FLAG_DUP_UIDS),
            buf=buf,
        )
        if flags & FLAG_SOLUTION:
            system.sol_low = _wrap_i64(view, offset, n)
            offset += n * 8
            system.sol_high = _wrap_i64(view, offset, n)
            system.sol_stats = (sccs, collapsed, largest, dag_edges, steps)
        return system


class FlatSolution(Solution):
    """A :class:`~repro.qual.solver.Solution` over flat buffers.

    ``least``/``greatest`` materialise their variable-keyed dicts only
    when actually read (differential fingerprints, visualisation);
    :meth:`least_of`/:meth:`greatest_of`/``classify`` answer directly
    from the mask arrays, rehydrating at most the queried variable's
    name.  This is the lazy-rehydration contract the binary cache relies
    on: classifying a warm run touches only the position variables'
    names, never the whole table.
    """

    def __init__(self, lattice, system, low, high, stats=None):
        # Deliberately not calling the dataclass __init__: least and
        # greatest are lazy properties here.
        self.lattice = lattice
        self.stats = stats
        self._system = system  # FlatSystem or _LiveIndex
        self._low = low
        self._high = high
        self._least_memo: dict | None = None
        self._greatest_memo: dict | None = None

    @property
    def least(self):  # type: ignore[override]
        if self._least_memo is None:
            from_mask = self.lattice.from_mask
            source = self._system
            low = self._low
            self._least_memo = {
                source.var(i): from_mask(int(low[i])) for i in range(source.n)
            }
        return self._least_memo

    @property
    def greatest(self):  # type: ignore[override]
        if self._greatest_memo is None:
            from_mask = self.lattice.from_mask
            source = self._system
            high = self._high
            self._greatest_memo = {
                source.var(i): from_mask(int(high[i])) for i in range(source.n)
            }
        return self._greatest_memo

    def least_of(self, var: QualVar) -> LatticeElement:
        i = self._system.index_of(var)
        if i is None or i >= len(self._low):
            return self.lattice.bottom
        return self.lattice.from_mask(int(self._low[i]))

    def greatest_of(self, var: QualVar) -> LatticeElement:
        i = self._system.index_of(var)
        if i is None or i >= len(self._high):
            return self.lattice.top
        return self.lattice.from_mask(int(self._high[i]))


# ---------------------------------------------------------------------------
# Solver entry points
# ---------------------------------------------------------------------------


def flat_solve(
    constraints: Iterable[QualConstraint],
    lattice: QualifierLattice,
    extra_vars: Iterable[QualVar] = (),
) -> Solution:
    """Drop-in flat-core counterpart of :func:`repro.qual.solver.solve`.

    Same solutions, same exceptions: unsatisfiable systems re-run the
    indexed system's provenance-tracking blame reconstruction so the
    error (message, witness, path) is byte-identical to ``solve``'s.
    This is the entry point the testkit's ``flatcore`` oracle family
    pits against the other two solvers; it works with or without numpy
    (stdlib CSR + Tarjan when the fast path is unavailable).
    """
    system = IndexedSystem(lattice)
    system.add_many(constraints)
    for var in extra_vars:
        system.add_var(var)
    conflict = system._ground_conflict
    if conflict is not None:
        assert isinstance(conflict.lhs, LatticeElement)
        assert isinstance(conflict.rhs, LatticeElement)
        raise UnsatisfiableError(conflict, conflict.lhs, conflict.rhs)

    if _FAST is not None and fits_flat(lattice):
        solution = solve_indexed(system)
        if solution is not None:
            return solution

    n = len(system._vars)
    indptr, indices = _csr_from_edges(n, system._edge_u, system._edge_v)
    result = _kernel_slow(
        n,
        indptr,
        indices,
        system._lower_mask.items(),
        system._upper_mask.items(),
        lattice,
    )
    if result.violation >= 0:
        i = result.violation
        raise system._unsat_error(
            system._vars[i], int(result.low[i]), int(result.high[i])
        )
    counts = (
        system._constraints,
        system._edges_before,
        system._ground_checks,
        system._constant_bounds,
    )
    return FlatSolution(
        lattice,
        _LiveIndex(system._vars, system._var_index),
        result.low,
        result.high,
        _stats_from(counts, n, len(indices), result),
    )


def solve_indexed(system: IndexedSystem) -> Solution | None:
    """Fast-path kernel for :meth:`IndexedSystem.solve`.

    Returns a lazy :class:`FlatSolution` over the live variable index —
    identical values, iteration order, stats, and blame as the object
    pipeline — or ``None`` when the fast kernel is unavailable or
    declined, in which case the caller runs its own loops.
    """
    if _FAST is None:
        return None
    lattice = system.lattice
    if not fits_flat(lattice):
        return None
    np = _FAST[0]
    n = len(system._vars)
    m = len(system._edge_u)
    eu = np.array(system._edge_u, dtype=np.int64) if m else np.zeros(0, dtype=np.int64)
    ev = np.array(system._edge_v, dtype=np.int64) if m else np.zeros(0, dtype=np.int64)
    lower = system._lower_mask
    upper = system._upper_mask
    low_idx = np.fromiter(lower.keys(), dtype=np.int64, count=len(lower))
    low_masks = np.fromiter(lower.values(), dtype=np.int64, count=len(lower))
    up_idx = np.fromiter(upper.keys(), dtype=np.int64, count=len(upper))
    up_masks = np.fromiter(upper.values(), dtype=np.int64, count=len(upper))
    result = _kernel_fast(n, eu, ev, low_idx, low_masks, up_idx, up_masks, lattice)
    if result is None:
        return None

    if result.violation >= 0:
        i = result.violation
        raise system._unsat_error(
            system._vars[i], int(result.low[i]), int(result.high[i])
        )

    counts = (
        system._constraints,
        system._edges_before,
        system._ground_checks,
        system._constant_bounds,
    )
    return FlatSolution(
        lattice,
        _LiveIndex(system._vars, system._var_index),
        result.low,
        result.high,
        _stats_from(counts, n, m, result),
    )
