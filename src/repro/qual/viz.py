"""Constraint-graph visualisation: atomic systems as Graphviz DOT.

Qualifier inference over a real program produces thousands of atomic
constraints; seeing the flow graph — variables as nodes, ``<=`` edges,
constant bounds as labelled source/sink boxes — is the fastest way to
understand why a position was classified the way it was.  ``to_dot``
renders a system (optionally decorated with a solution's least/greatest
bounds per node); ``neighborhood`` restricts the rendering to the
variables within a given distance of a focus variable, which is what
you want on whole-program systems.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from .constraints import QualConstraint
from .lattice import LatticeElement
from .qtypes import QualVar
from .solver import Solution


def _node_id(q: QualVar | LatticeElement, constant_ids: dict) -> str:
    if isinstance(q, QualVar):
        return f"v{q.uid}"
    key = q.present
    if key not in constant_ids:
        constant_ids[key] = f"c{len(constant_ids)}"
    return constant_ids[key]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(
    constraints: Iterable[QualConstraint],
    solution: Solution | None = None,
    title: str = "qualifier constraints",
) -> str:
    """Render an atomic constraint system as a DOT digraph.

    Variables become ellipse nodes (annotated ``[least..greatest]`` when
    a solution is supplied); lattice constants become grey boxes; each
    constraint ``a <= b`` becomes an edge labelled with its origin.
    """
    lines = [
        "digraph constraints {",
        f'    label="{_escape(title)}";',
        "    rankdir=LR;",
        '    node [fontname="monospace"];',
    ]
    constant_ids: dict = {}
    seen_nodes: set[str] = set()
    edges: list[str] = []

    def declare(q) -> str:
        node = _node_id(q, constant_ids)
        if node in seen_nodes:
            return node
        seen_nodes.add(node)
        if isinstance(q, QualVar):
            label = q.name
            if solution is not None:
                lo = solution.least_of(q)
                hi = solution.greatest_of(q)
                label += f"\\n[{lo}..{hi}]"
            lines.append(f'    {node} [label="{_escape(label)}"];')
        else:
            text = str(q)
            lines.append(
                f'    {node} [label="{_escape(text)}", shape=box, '
                f"style=filled, fillcolor=lightgrey];"
            )
        return node

    for c in constraints:
        src = declare(c.lhs)
        dst = declare(c.rhs)
        reason = _escape(c.origin.reason[:40])
        edges.append(f'    {src} -> {dst} [label="{reason}"];')

    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines)


def neighborhood(
    constraints: Iterable[QualConstraint],
    focus: QualVar,
    distance: int = 2,
) -> list[QualConstraint]:
    """The constraints within ``distance`` edges of ``focus`` (treating
    edges as undirected for reachability)."""
    constraint_list = list(constraints)
    adjacency: dict[QualVar, set[QualVar]] = {}
    for c in constraint_list:
        if isinstance(c.lhs, QualVar) and isinstance(c.rhs, QualVar):
            adjacency.setdefault(c.lhs, set()).add(c.rhs)
            adjacency.setdefault(c.rhs, set()).add(c.lhs)

    reached: dict[QualVar, int] = {focus: 0}
    queue = deque([focus])
    while queue:
        current = queue.popleft()
        depth = reached[current]
        if depth >= distance:
            continue
        for neighbour in adjacency.get(current, ()):
            if neighbour not in reached:
                reached[neighbour] = depth + 1
                queue.append(neighbour)

    out = []
    for c in constraint_list:
        members = [q for q in (c.lhs, c.rhs) if isinstance(q, QualVar)]
        if members and all(q in reached for q in members):
            out.append(c)
    return out


def position_dot(
    run,
    position_description: str,
    distance: int = 2,
) -> str:
    """DOT for the constraint neighbourhood of one const-inference
    position (by its ``describe()`` string) — a debugging one-liner:

        print(position_dot(run_mono(program), "id: return depth 1"))
    """
    if run.inference is None:
        raise ValueError("position_dot needs a run that kept its ConstInference")
    for position, _verdict in run.classified_positions():
        if position.describe() == position_description:
            nearby = neighborhood(
                run.inference.constraints, position.var, distance
            )
            return to_dot(nearby, run.solution, position_description)
    raise KeyError(f"no position {position_description!r}")
