"""Standard and qualified types (paper Sections 2 and 2.1).

Standard types are terms over a set of type constructors and type
variables::

    Typ  ::= alpha | c(Typ_1, ..., Typ_arity(c))

Qualified types annotate *every* constructor level with a qualifier — a
lattice element or a qualifier variable::

    QTyp ::= Q sigma
    sigma ::= alpha | c(QTyp_1, ..., QTyp_arity(c))
    Q    ::= kappa | l

This module defines both type languages, the type constructors of the
paper's example language (``int``, ``unit``, ``->``, ``ref``), and the
translation functions of Section 2.3:

* :func:`strip` — erase all qualifiers from a qualified type.
* :func:`embed_bottom` — the ``bottom(tau)`` embedding: same structure with
  all qualifiers at lattice bottom.
* :func:`spread` — the ``sp`` operator of Section 3.1: rewrite a standard
  type into a qualified type with *fresh qualifier variables* at every
  constructor, consistently mapping standard type variables.

Constructor variance drives the generic subtype decomposition rule
(Section 2.1): function types are contravariant in their domain and
covariant in their range, while ``ref`` is *invariant* in its contents —
the (SubRef) rule of Section 2.4, required for soundness with updateable
references.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Union

from .lattice import LatticeElement, QualifierLattice


class Variance(enum.Enum):
    """How a constructor argument participates in subtyping."""

    COVARIANT = "+"
    CONTRAVARIANT = "-"
    INVARIANT = "="

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Variance.{self.name}"


@dataclass(frozen=True)
class TypeConstructor:
    """A type constructor ``c`` with its arity and per-argument variance.

    Constructors are compared by identity on hot paths (``constructor is
    REF``), so every constructor must be interned: construct them through
    :func:`intern_constructor`, and pickling resolves back to the
    canonical instance rather than materialising an equal-but-distinct
    copy (cache-loaded TU summaries carry whole ``QType`` schemes).
    """

    name: str
    variances: tuple[Variance, ...]

    @property
    def arity(self) -> int:
        return len(self.variances)

    def __str__(self) -> str:
        return self.name

    def __reduce__(self):
        return (intern_constructor, (self.name, self.variances))


_CONSTRUCTOR_INTERN: dict[tuple[str, tuple[Variance, ...]], TypeConstructor] = {}


def intern_constructor(
    name: str, variances: tuple[Variance, ...]
) -> TypeConstructor:
    """The canonical constructor for ``(name, variances)``.

    All constructor creation (and unpickling) funnels through here so
    ``is``-comparisons stay valid across cache loads and process pools.
    """
    key = (name, tuple(variances))
    con = _CONSTRUCTOR_INTERN.get(key)
    if con is None:
        con = TypeConstructor(key[0], key[1])
        _CONSTRUCTOR_INTERN[key] = con
    return con


#: The constructors of the paper's example language (Sections 2 and 2.4).
INT = intern_constructor("int", ())
UNIT = intern_constructor("unit", ())
FUN = intern_constructor("->", (Variance.CONTRAVARIANT, Variance.COVARIANT))
REF = intern_constructor("ref", (Variance.INVARIANT,))

#: Extra constructors used by application instances and the C front end.
PAIR = intern_constructor("pair", (Variance.COVARIANT, Variance.COVARIANT))
LIST = intern_constructor("list", (Variance.COVARIANT,))


# ---------------------------------------------------------------------------
# Standard types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StdVar:
    """A standard type variable ``alpha``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class StdCon:
    """A constructed standard type ``c(tau_1, ..., tau_n)``."""

    con: TypeConstructor
    args: tuple["StdType", ...] = ()

    def __post_init__(self) -> None:
        if len(self.args) != self.con.arity:
            raise TypeError(
                f"constructor {self.con.name} expects {self.con.arity} "
                f"arguments, got {len(self.args)}"
            )

    def __str__(self) -> str:
        if self.con is FUN:
            dom, rng = self.args
            return f"({dom} -> {rng})"
        if not self.args:
            return self.con.name
        return f"{self.con.name}({', '.join(map(str, self.args))})"


StdType = Union[StdVar, StdCon]

STD_INT = StdCon(INT)
STD_UNIT = StdCon(UNIT)


def std_fun(dom: StdType, rng: StdType) -> StdCon:
    """Standard function type ``dom -> rng``."""
    return StdCon(FUN, (dom, rng))


def std_ref(contents: StdType) -> StdCon:
    """Standard reference type ``ref(contents)``."""
    return StdCon(REF, (contents,))


def std_type_vars(t: StdType) -> set[str]:
    """The free type variables of a standard type."""
    if isinstance(t, StdVar):
        return {t.name}
    out: set[str] = set()
    for arg in t.args:
        out |= std_type_vars(arg)
    return out


# ---------------------------------------------------------------------------
# Qualifiers on types: variables or lattice constants
# ---------------------------------------------------------------------------


_fresh_counter = itertools.count()


class QualVar:
    """A qualifier variable ``kappa`` ranging over lattice elements.

    A plain ``__slots__`` class rather than a dataclass: inference
    allocates one per qualifier position and the solver keys every
    dictionary on them, so construction and hashing are hot.
    """

    __slots__ = ("name", "uid")

    def __init__(self, name: str, uid: int = -1) -> None:
        self.name = name
        self.uid = uid

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"QualVar({self.name!r}, uid={self.uid})"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, QualVar):
            return NotImplemented
        return self.uid == other.uid and self.name == other.name

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        # CPython caches str hashes, so this avoids the tuple allocation
        # of a generated dataclass hash on every dictionary lookup.
        return self.uid ^ hash(self.name)


_band_local = threading.local()


class UidBandExhausted(RuntimeError):
    """A reserved uid band overflowed; the caller must retry serially
    (or with a larger band)."""


class UidBand:
    """A half-open uid range ``[next, end)`` serving one thread's fresh
    variables.  Bands make concurrent constraint generation
    *deterministic*: each worker draws uids from its own pre-assigned
    range, so the variables a task allocates are a pure function of the
    task and its band start — independent of scheduling interleavings."""

    __slots__ = ("start", "next", "end")

    def __init__(self, start: int, size: int) -> None:
        self.start = start
        self.next = start
        self.end = start + size

    def take(self) -> int:
        uid = self.next
        if uid >= self.end:
            raise UidBandExhausted(
                f"uid band [{self.start}, {self.end}) exhausted"
            )
        self.next = uid + 1
        return uid


def fresh_qual_var(hint: str = "k") -> QualVar:
    """Allocate a globally fresh qualifier variable.

    ``next()`` on :func:`itertools.count` is atomic under the GIL, so
    concurrent allocators still receive distinct uids without a lock.
    When the calling thread is inside :func:`fresh_uid_band`, uids come
    from the thread's reserved band instead of the global counter.
    """
    band = getattr(_band_local, "band", None)
    if band is not None:
        uid = band.take()
    else:
        uid = next(_fresh_counter)
    return QualVar(f"{hint}{uid}", uid)


class use_uid_band:
    """Context manager routing this thread's :func:`fresh_qual_var`
    calls to ``band`` — a :class:`UidBand`, or ``None`` for the global
    counter.

    The coordinator of a parallel wavefront assigns each worker a
    disjoint band and afterwards calls :func:`advance_fresh_uids` past
    every reserved range, so banded uids never collide with later global
    allocations.  Bands nest: the previous routing is restored on exit.
    """

    def __init__(self, band: UidBand | None) -> None:
        self._band = band
        self._prev: UidBand | None = None

    def __enter__(self) -> UidBand | None:
        self._prev = getattr(_band_local, "band", None)
        _band_local.band = self._band
        return self._band

    def __exit__(self, *exc: object) -> None:
        _band_local.band = self._prev


def fresh_uid_band(start: int, size: int) -> use_uid_band:
    """Reserve ``[start, start + size)`` for this thread's allocations."""
    return use_uid_band(UidBand(start, size))


def advance_fresh_uids(minimum: int) -> None:
    """Ensure every subsequent global allocation has ``uid >= minimum``.

    Called after a banded wavefront completes so the global counter
    skips the reserved ranges.  Never moves the counter backwards.
    """
    global _fresh_counter
    current = next(_fresh_counter)
    _fresh_counter = itertools.count(max(current + 1, minimum))


Qual = Union[QualVar, LatticeElement]


# ---------------------------------------------------------------------------
# Qualified types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShapeVar:
    """A qualified-type structure variable ``alpha`` (paired with a
    qualifier, ``kappa alpha`` plays the role of a qualified type variable)."""

    name: str

    def __str__(self) -> str:
        return self.name


class QCon:
    """A constructed shape ``c(rho_1, ..., rho_n)`` with qualified children.

    Slotted by hand for the same reason as :class:`QualVar`: the C front
    end builds one per constructor level of every translated type.
    """

    __slots__ = ("con", "args")

    def __init__(self, con: TypeConstructor, args: tuple["QType", ...] = ()) -> None:
        if len(args) != con.arity:
            raise TypeError(
                f"constructor {con.name} expects {con.arity} "
                f"arguments, got {len(args)}"
            )
        self.con = con
        self.args = args

    def __repr__(self) -> str:
        return f"QCon({self.con!r}, {self.args!r})"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, QCon):
            return NotImplemented
        return self.con == other.con and self.args == other.args

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash((self.con, self.args))


QShape = Union[ShapeVar, QCon]


class QType:
    """A qualified type ``Q sigma``: a qualifier atop a shape."""

    __slots__ = ("qual", "shape")

    def __init__(self, qual: Qual, shape: QShape) -> None:
        self.qual = qual
        self.shape = shape

    def __repr__(self) -> str:
        return f"QType({self.qual!r}, {self.shape!r})"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, QType):
            return NotImplemented
        return self.qual == other.qual and self.shape == other.shape

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash((self.qual, self.shape))

    def __str__(self) -> str:
        return format_qtype(self)

    @property
    def constructor(self) -> TypeConstructor | None:
        """The outermost constructor, or None for a shape variable."""
        return self.shape.con if isinstance(self.shape, QCon) else None

    @property
    def args(self) -> tuple["QType", ...]:
        """Children of the outermost constructor (empty for variables)."""
        return self.shape.args if isinstance(self.shape, QCon) else ()

    def with_qual(self, qual: Qual) -> "QType":
        """This type with its top-level qualifier replaced."""
        return QType(qual, self.shape)


def qt(qual: Qual, con: TypeConstructor, *args: QType) -> QType:
    """Convenience constructor for a qualified constructed type."""
    return QType(qual, QCon(con, tuple(args)))


def q_int(qual: Qual) -> QType:
    return qt(qual, INT)


def q_unit(qual: Qual) -> QType:
    return qt(qual, UNIT)


def q_fun(qual: Qual, dom: QType, rng: QType) -> QType:
    return qt(qual, FUN, dom, rng)


def q_ref(qual: Qual, contents: QType) -> QType:
    return qt(qual, REF, contents)


def q_var(qual: Qual, name: str) -> QType:
    """A qualified type variable ``Q alpha``."""
    return QType(qual, ShapeVar(name))


def format_qual(q: Qual) -> str:
    """Render a qualifier variable or lattice element for display."""
    if isinstance(q, QualVar):
        return q.name
    if not q.present:
        return ""
    return " ".join(sorted(q.present))


def format_qtype(t: QType) -> str:
    """Pretty-print a qualified type in the paper's prefix notation."""
    prefix = format_qual(t.qual)
    prefix = prefix + " " if prefix else ""
    shape = t.shape
    if isinstance(shape, ShapeVar):
        return f"{prefix}{shape.name}"
    if shape.con is FUN:
        dom, rng = shape.args
        return f"{prefix}({format_qtype(dom)} -> {format_qtype(rng)})"
    if not shape.args:
        return f"{prefix}{shape.con.name}"
    inner = ", ".join(format_qtype(a) for a in shape.args)
    return f"{prefix}{shape.con.name}({inner})"


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def qual_vars(t: QType) -> set[QualVar]:
    """All qualifier variables occurring anywhere in a qualified type."""
    out: set[QualVar] = set()
    stack = [t]
    while stack:
        cur = stack.pop()
        if isinstance(cur.qual, QualVar):
            out.add(cur.qual)
        if isinstance(cur.shape, QCon):
            stack.extend(cur.shape.args)
    return out


def shape_vars(t: QType) -> set[str]:
    """All shape (structure) variables occurring in a qualified type."""
    out: set[str] = set()
    stack = [t]
    while stack:
        cur = stack.pop()
        if isinstance(cur.shape, ShapeVar):
            out.add(cur.shape.name)
        else:
            stack.extend(cur.shape.args)
    return out


def quals_of(t: QType) -> Iterator[Qual]:
    """Iterate over every qualifier position in the type, outermost first."""
    yield t.qual
    if isinstance(t.shape, QCon):
        for arg in t.shape.args:
            yield from quals_of(arg)


def map_quals(t: QType, f: Callable[[Qual], Qual]) -> QType:
    """Rebuild a qualified type applying ``f`` to every qualifier position."""
    shape: QShape = t.shape
    if isinstance(shape, QCon):
        shape = QCon(shape.con, tuple(map_quals(a, f) for a in shape.args))
    return QType(f(t.qual), shape)


def apply_qual_subst(t: QType, subst: Mapping[QualVar, Qual]) -> QType:
    """Substitute qualifier variables throughout a qualified type."""
    return map_quals(t, lambda q: subst.get(q, q) if isinstance(q, QualVar) else q)


def apply_shape_subst(t: QType, subst: Mapping[str, QType]) -> QType:
    """Substitute shape variables by qualified types.

    When a shape variable ``alpha`` carrying qualifier ``Q`` is replaced by a
    qualified type ``Q' sigma``, the result keeps the *outer* qualifier
    ``Q`` only if the replacement's own qualifier is a variable that is
    itself being eliminated; otherwise the replacement's qualifier stands.
    In this framework shape substitutions arise only from standard-type
    unification, where the replacement carries the canonical qualifier for
    that node, so the replacement's qualifier always wins.
    """
    shape = t.shape
    if isinstance(shape, ShapeVar):
        replacement = subst.get(shape.name)
        return replacement if replacement is not None else t
    return QType(
        t.qual, QCon(shape.con, tuple(apply_shape_subst(a, subst) for a in shape.args))
    )


def same_shape(a: QType, b: QType) -> bool:
    """Whether two qualified types have identical underlying structure."""
    return strip(a) == strip(b)


# ---------------------------------------------------------------------------
# The Section 2.3 translations
# ---------------------------------------------------------------------------


def strip(t: QType) -> StdType:
    """``strip(rho)``: the standard type obtained by erasing all qualifiers."""
    shape = t.shape
    if isinstance(shape, ShapeVar):
        return StdVar(shape.name)
    return StdCon(shape.con, tuple(strip(a) for a in shape.args))


def embed_bottom(t: StdType, lattice: QualifierLattice) -> QType:
    """``bottom(tau)``: same structure as ``tau``, all qualifiers at bottom."""
    return embed_const(t, lattice.bottom)


def embed_const(t: StdType, qual: Qual) -> QType:
    """Embed a standard type with the same qualifier at every level."""
    if isinstance(t, StdVar):
        return QType(qual, ShapeVar(t.name))
    return QType(qual, QCon(t.con, tuple(embed_const(a, qual) for a in t.args)))


def spread(
    t: StdType,
    var_map: dict[str, QType] | None = None,
    fresh: Callable[[], Qual] | None = None,
) -> QType:
    """The ``sp`` operator of Section 3.1.

    Rewrites a standard type into a qualified type, placing a fresh
    qualifier variable on every constructor and consistently mapping each
    standard type variable ``alpha`` to a fixed ``kappa alpha`` (recorded in
    ``var_map`` so repeated occurrences agree, as the paper requires).
    """
    if fresh is None:
        fresh = fresh_qual_var
    if var_map is None:
        var_map = {}
    if isinstance(t, StdVar):
        if t.name not in var_map:
            var_map[t.name] = QType(fresh(), ShapeVar(t.name))
        return var_map[t.name]
    return QType(fresh(), QCon(t.con, tuple(spread(a, var_map, fresh) for a in t.args)))
