"""Polymorphic constrained qualifier types (paper Section 3.2).

A polymorphic type ``forall kappa_vec. rho \\ C`` stands for every
instantiation ``rho[kappa_vec -> Q_vec]`` under constraints
``C[kappa_vec -> Q_vec]``.  Polymorphism applies only to qualifiers —
the underlying type structure stays monomorphic — so generalisation and
instantiation are pure renamings of qualifier variables.

Following the paper we use let-style polymorphism restricted to syntactic
values, with the rules:

* **(Letv)** — generalise the qualifier variables of a value's type that
  are not free in the environment; the generalised variables become
  existentially quantified in the residual constraint system (they are
  purely local and may be renamed freely).
* **(Var')** — instantiate a polymorphic type at a use site by renaming
  its bound variables to fresh ones and re-emitting its constraints under
  the renaming.

This module supplies the scheme representation plus generalisation,
instantiation, and the constraint-restriction step that keeps each scheme
carrying only the constraints that actually mention its bound variables
(everything else remains once in the global system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .constraints import QualConstraint
from .qtypes import (
    QType,
    Qual,
    QualVar,
    apply_qual_subst,
    format_qtype,
    fresh_qual_var,
    qual_vars,
)


def _subst_qual(q: Qual, subst: dict[QualVar, Qual]) -> Qual:
    if isinstance(q, QualVar):
        return subst.get(q, q)
    return q


def rename_constraints(
    constraints: Iterable[QualConstraint], subst: dict[QualVar, Qual]
) -> list[QualConstraint]:
    """Apply a qualifier-variable substitution to a list of constraints."""
    return [
        QualConstraint(_subst_qual(c.lhs, subst), _subst_qual(c.rhs, subst), c.origin)
        for c in constraints
    ]


def restrict_constraints(
    constraints: Iterable[QualConstraint], variables: set[QualVar]
) -> list[QualConstraint]:
    """Keep the constraints that mention at least one of ``variables``.

    These are the constraints a scheme must carry: at instantiation they
    are re-emitted under the renaming, while constraints purely between
    free variables stay (once) in the enclosing system.
    """
    out = []
    for c in constraints:
        if (isinstance(c.lhs, QualVar) and c.lhs in variables) or (
            isinstance(c.rhs, QualVar) and c.rhs in variables
        ):
            out.append(c)
    return out


@dataclass(frozen=True)
class QualScheme:
    """``forall quantified. body \\ constraints``.

    A monomorphic type is the degenerate scheme with no quantified
    variables and no carried constraints.
    """

    quantified: tuple[QualVar, ...]
    body: QType
    constraints: tuple[QualConstraint, ...] = ()

    @property
    def is_monomorphic(self) -> bool:
        return not self.quantified

    def instantiate(
        self, fresh: Callable[[], QualVar] = fresh_qual_var
    ) -> tuple[QType, list[QualConstraint]]:
        """(Var'): rename bound variables fresh; return body and constraints."""
        if not self.quantified:
            return self.body, list(self.constraints)
        subst: dict[QualVar, Qual] = {v: fresh() for v in self.quantified}
        return (
            apply_qual_subst(self.body, subst),
            rename_constraints(self.constraints, subst),
        )

    def free_qual_vars(self) -> set[QualVar]:
        """Qualifier variables free in the scheme (not bound by forall)."""
        bound = set(self.quantified)
        out = qual_vars(self.body) - bound
        for c in self.constraints:
            for q in (c.lhs, c.rhs):
                if isinstance(q, QualVar) and q not in bound:
                    out.add(q)
        return out

    def __str__(self) -> str:
        if not self.quantified:
            return format_qtype(self.body)
        names = " ".join(v.name for v in self.quantified)
        base = f"forall {names}. {format_qtype(self.body)}"
        if self.constraints:
            cs = ", ".join(str(c) for c in self.constraints)
            base += f" \\ {{{cs}}}"
        return base


def monomorphic(body: QType) -> QualScheme:
    """The trivial scheme of a monomorphic type."""
    return QualScheme((), body)


def generalize(
    body: QType,
    constraints: Sequence[QualConstraint],
    env_vars: set[QualVar],
    lattice=None,
    compress: bool = False,
) -> QualScheme:
    """(Letv): quantify the qualifier variables of ``body`` not free in the
    environment, carrying along the constraints that mention them.

    The returned scheme's constraint set is first *closed*: starting from
    the body's generalisable variables, any variable connected to them
    through a constraint is swept in (if it is not free in the
    environment), so instantiation reproduces the full local subsystem.

    With ``compress=True`` the carried system is then shrunk by
    *transitive bound compression*: quantified variables that do not occur
    in the body (pure interior plumbing of the generalised function) are
    projected out by resolution — every lower bound composed with every
    upper bound — which is exact for atomic constraints in any lattice.
    Every later instantiation then copies only constraints between
    interface variables and constants.  Pass the ``lattice`` so ground
    by-products that already hold can be dropped (unsatisfiable ground
    by-products are always kept, preserving error reporting).
    """
    candidate = qual_vars(body) - env_vars

    # Close over constraint connectivity so chains like k1 <= k2 <= k3 are
    # carried whole even when only k1 appears in the body.
    adjacency: dict[QualVar, set[QualVar]] = {}
    for c in constraints:
        if isinstance(c.lhs, QualVar) and isinstance(c.rhs, QualVar):
            adjacency.setdefault(c.lhs, set()).add(c.rhs)
            adjacency.setdefault(c.rhs, set()).add(c.lhs)
    frontier = list(candidate)
    quantified = set(candidate)
    while frontier:
        v = frontier.pop()
        for w in adjacency.get(v, ()):
            if w not in quantified and w not in env_vars:
                quantified.add(w)
                frontier.append(w)

    carried = _dedupe(restrict_constraints(constraints, quantified))
    if compress:
        interior = quantified - qual_vars(body)
        carried = _compress_interior(carried, interior, lattice)
        # A variable eliminated by compression no longer needs a binder;
        # one kept only as plumbing between survivors still does.
        mentioned: set[QualVar] = set()
        for c in carried:
            if isinstance(c.lhs, QualVar):
                mentioned.add(c.lhs)
            if isinstance(c.rhs, QualVar):
                mentioned.add(c.rhs)
        quantified = (quantified - interior) | (quantified & mentioned)
    ordered = tuple(sorted(quantified, key=lambda v: v.uid))
    return QualScheme(ordered, body, tuple(carried))


def _compress_interior(
    constraints: list[QualConstraint],
    interior: set[QualVar],
    lattice,
) -> list[QualConstraint]:
    """Project interior variables out of an atomic system by resolution.

    For each eliminated variable ``v`` with lower bounds ``L`` and upper
    bounds ``U``, the system minus ``v`` plus ``{l <= u | l in L, u in U}``
    has exactly the same solutions over the remaining variables (the
    classic exactness of resolution for atomic subtyping).  Variables are
    eliminated cheapest-fan first, and a variable whose ``|L| x |U|``
    product would *grow* the system is kept — compression must never make
    instantiation more expensive.
    """
    from .lattice import LatticeElement

    if not interior:
        return constraints

    work = list(constraints)
    eliminated: set[QualVar] = set()
    changed = True
    while changed:
        changed = False
        lowers: dict[QualVar, list[QualConstraint]] = {}
        uppers: dict[QualVar, list[QualConstraint]] = {}
        for c in work:
            if isinstance(c.rhs, QualVar) and c.rhs in interior:
                lowers.setdefault(c.rhs, []).append(c)
            if isinstance(c.lhs, QualVar) and c.lhs in interior:
                uppers.setdefault(c.lhs, []).append(c)
        candidates = sorted(
            (v for v in interior if v not in eliminated),
            key=lambda v: (
                len(lowers.get(v, ())) * len(uppers.get(v, ())),
                v.uid,
            ),
        )
        for victim in candidates:
            lo = lowers.get(victim, [])
            up = uppers.get(victim, [])
            removed = len(lo) + len(up)
            if len(lo) * len(up) > removed:
                continue  # fan-out would grow the system; keep the variable
            keep = [c for c in work if victim != c.lhs and victim != c.rhs]
            for low in lo:
                for high in up:
                    if low.lhs == high.rhs:
                        continue
                    if (
                        lattice is not None
                        and isinstance(low.lhs, LatticeElement)
                        and isinstance(high.rhs, LatticeElement)
                        and lattice.leq(low.lhs, high.rhs)
                    ):
                        continue  # ground and already true: no information
                    # blame the upper-bound half: that is the constraint a
                    # violation of the composed bound would trip
                    keep.append(QualConstraint(low.lhs, high.rhs, high.origin))
            work = _dedupe(keep)
            eliminated.add(victim)
            changed = True
            break
    return work


def _dedupe(constraints: Iterable[QualConstraint]) -> list[QualConstraint]:
    seen: set[tuple[Qual, Qual]] = set()
    out = []
    for c in constraints:
        key = (c.lhs, c.rhs)
        if key not in seen and not c.is_trivial:
            seen.add(key)
            out.append(c)
    return out


def minimize_scheme(scheme: QualScheme, lattice=None) -> QualScheme:
    """Aggressively simplify a scheme for presentation (Section 6 raises
    this as an open problem; this implements the exact core of it for
    atomic constraints).

    Three solution-set-preserving transformations, in order:

    1. **Cycle collapse** — quantified variables in a ``<=`` cycle are
       equal in every solution; they are merged into one representative
       (rewriting the body).
    2. **Interior elimination** — a quantified variable not occurring in
       the body is projected out by resolution: every lower bound is
       composed with every upper bound.  For atomic constraints this is
       *exact*: ``join(lowers) <= meet(uppers)`` holds iff every
       lower/upper pair is ordered, in any lattice.
    3. **Transitive reduction** — edges implied by other edges (or by a
       constant chain ``upper(a) <= lower(b)``, when a lattice is given)
       are dropped, and trivial bottom-lower / top-upper constant bounds
       disappear.

    The property tests validate preservation by brute force: the
    projection of the solution set onto the body's variables is
    identical before and after.
    """
    from .lattice import LatticeElement

    body_vars = qual_vars(scheme.body)
    bound = set(scheme.quantified)
    constraints = _dedupe(scheme.constraints)

    # -- 1. collapse <=-cycles among quantified variables ---------------
    adjacency: dict[QualVar, set[QualVar]] = {}
    for c in constraints:
        if isinstance(c.lhs, QualVar) and isinstance(c.rhs, QualVar):
            if c.lhs in bound and c.rhs in bound:
                adjacency.setdefault(c.lhs, set()).add(c.rhs)
    representative: dict[QualVar, QualVar] = {}
    for component in _var_sccs(adjacency):
        if len(component) > 1:
            # prefer a body-occurring representative for readability
            rep = next((v for v in component if v in body_vars), component[0])
            for member in component:
                representative[member] = rep
    if representative:
        subst: dict[QualVar, Qual] = dict(representative)
        constraints = _dedupe(rename_constraints(constraints, subst))
        body = apply_qual_subst(scheme.body, subst)
        body_vars = qual_vars(body)
        bound = {representative.get(v, v) for v in bound}
    else:
        body = scheme.body

    # -- 2. eliminate quantified interior variables ---------------------
    changed = True
    while changed:
        changed = False
        for victim in sorted(bound - body_vars, key=lambda v: v.uid):
            lowers = [c.lhs for c in constraints if c.rhs == victim]
            uppers = [c.rhs for c in constraints if c.lhs == victim]
            keep = [c for c in constraints if victim not in (c.lhs, c.rhs)]
            for low in lowers:
                for up in uppers:
                    keep.append(QualConstraint(low, up))
            constraints = _dedupe(keep)
            bound.discard(victim)
            changed = True
            break

    # -- 3. transitive reduction and trivia removal ----------------------
    def ground_holds(a: Qual, b: Qual) -> bool:
        if (
            lattice is not None
            and isinstance(a, LatticeElement)
            and isinstance(b, LatticeElement)
        ):
            return lattice.leq(a, b)
        return a == b

    kept = list(constraints)
    position = 0
    while position < len(kept):
        c = kept[position]
        trivial = (
            ground_holds(c.lhs, c.rhs)
            or (
                lattice is not None
                and isinstance(c.rhs, LatticeElement)
                and c.rhs == lattice.top
            )
            or (
                lattice is not None
                and isinstance(c.lhs, LatticeElement)
                and c.lhs == lattice.bottom
            )
        )
        if trivial:
            kept.pop(position)
            continue
        others = kept[:position] + kept[position + 1 :]
        if _derivable(c.lhs, c.rhs, others, lattice):
            kept.pop(position)
            continue
        position += 1
    constraints = _dedupe(kept)

    kept_vars = set(body_vars)
    for c in constraints:
        for q in (c.lhs, c.rhs):
            if isinstance(q, QualVar):
                kept_vars.add(q)
    quantified = tuple(sorted(bound & kept_vars, key=lambda v: v.uid))
    return QualScheme(quantified, body, tuple(constraints))


def _var_sccs(adjacency: dict[QualVar, set[QualVar]]) -> list[list[QualVar]]:
    """Strongly connected components of the quantified <=-graph."""
    index_of: dict[QualVar, int] = {}
    low: dict[QualVar, int] = {}
    on_stack: set[QualVar] = set()
    stack: list[QualVar] = []
    out: list[list[QualVar]] = []
    counter = [0]

    vertices = sorted(
        set(adjacency) | {w for ws in adjacency.values() for w in ws},
        key=lambda v: v.uid,
    )

    def visit(v: QualVar) -> None:
        index_of[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(adjacency.get(v, ()), key=lambda x: x.uid):
            if w not in index_of:
                visit(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index_of[w])
        if low[v] == index_of[v]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == v:
                    break
            out.append(sorted(component, key=lambda x: x.uid))

    for v in vertices:
        if v not in index_of:
            visit(v)
    return out


def _derivable(
    lhs: Qual, rhs: Qual, constraints: list[QualConstraint], lattice
) -> bool:
    """Whether ``lhs <= rhs`` follows from ``constraints`` by chaining
    (and, when a lattice is given, ground comparisons at the endpoints)."""
    from .lattice import LatticeElement

    def below(a: Qual, b: Qual) -> bool:
        if a == b:
            return True
        if (
            lattice is not None
            and isinstance(a, LatticeElement)
            and isinstance(b, LatticeElement)
        ):
            return lattice.leq(a, b)
        return False

    reachable: set[Qual] = {lhs}
    frontier = [lhs]
    while frontier:
        current = frontier.pop()
        if below(current, rhs):
            return True
        for c in constraints:
            if below(current, c.lhs) and c.rhs not in reachable:
                reachable.add(c.rhs)
                frontier.append(c.rhs)
    return any(below(q, rhs) for q in reachable)


def simplify_scheme(scheme: QualScheme) -> QualScheme:
    """Drop quantified variables that no constraint and no body position
    mentions, and deduplicate constraints — a light version of the
    constraint-simplification problem the paper's future-work section
    raises (full simplification is open; this handles the easy cases).
    """
    mentioned = qual_vars(scheme.body)
    for c in scheme.constraints:
        for q in (c.lhs, c.rhs):
            if isinstance(q, QualVar):
                mentioned.add(q)
    kept = tuple(v for v in scheme.quantified if v in mentioned)
    return QualScheme(kept, scheme.body, tuple(_dedupe(scheme.constraints)))
