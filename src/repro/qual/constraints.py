"""Constraint language for qualifier inference (paper Section 3.1).

Qualifier inference generates two kinds of constraints:

* **Subtype constraints** ``rho <= rho'`` between qualified types, produced
  by the subsumption rule and by the equalities of the original type rules
  (``rho = rho'`` abbreviates the pair ``rho <= rho'``, ``rho' <= rho``).
* **Atomic qualifier constraints** ``Q <= Q'`` between qualifiers (lattice
  elements or qualifier variables), produced by decomposing subtype
  constraints through the structural subtyping rules.

Solving proceeds in two stages (Section 3.1): first the structural rules
rewrite every subtype constraint into atomic constraints (see
``repro.qual.subtype``), then the atomic system — which is an *atomic
subtyping* system over a fixed finite lattice — is solved in effectively
linear time (see ``repro.qual.solver``).

Every constraint carries an :class:`Origin` describing where in the source
program it arose, so that unsatisfiable systems produce actionable error
messages (e.g. "assignment to const l-value at foo.c:12").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .lattice import LatticeElement
from .qtypes import QType, Qual, QualVar, format_qual, format_qtype


@dataclass(frozen=True)
class Origin:
    """Provenance of a constraint, for diagnostics."""

    reason: str
    filename: str | None = None
    line: int | None = None
    column: int | None = None

    def __str__(self) -> str:
        loc = self.location()
        if loc is not None:
            return f"{self.reason} at {loc}"
        if self.line is not None:
            return f"{self.reason} at line {self.line}"
        return self.reason

    def location(self) -> str | None:
        """The clickable ``file:line[:col]`` form, or ``None`` when the
        origin has no file (pure synthetic constraints)."""
        if self.filename is None:
            return None
        loc = self.filename
        if self.line is not None:
            loc += f":{self.line}"
            if self.column is not None:
                loc += f":{self.column}"
        return loc

    @property
    def has_span(self) -> bool:
        """True when the origin pins a real source location."""
        return self.filename is not None and self.line is not None


#: Origin used when no better provenance is available.
UNKNOWN_ORIGIN = Origin("constraint")


@dataclass(frozen=True)
class SubtypeConstraint:
    """A structural constraint ``lhs <= rhs`` between qualified types."""

    lhs: QType
    rhs: QType
    origin: Origin = UNKNOWN_ORIGIN

    def __str__(self) -> str:
        return f"{format_qtype(self.lhs)} <= {format_qtype(self.rhs)}"


class QualConstraint:
    """An atomic constraint ``lhs <= rhs`` between qualifiers.

    Hand-slotted rather than a frozen dataclass: inference emits one per
    qualifier flow and the solver re-reads them in bulk, so construction
    cost is on the hot path.
    """

    __slots__ = ("lhs", "rhs", "origin")

    def __init__(self, lhs: Qual, rhs: Qual, origin: Origin = UNKNOWN_ORIGIN) -> None:
        self.lhs = lhs
        self.rhs = rhs
        self.origin = origin

    def __repr__(self) -> str:
        return f"QualConstraint({self.lhs!r}, {self.rhs!r}, {self.origin!r})"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, QualConstraint):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.origin == other.origin
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs, self.origin))

    def __str__(self) -> str:
        return f"{format_qual(self.lhs) or '<none>'} <= {format_qual(self.rhs) or '<none>'}"

    @property
    def is_trivial(self) -> bool:
        """Constraints of the form ``q <= q`` carry no information."""
        return self.lhs == self.rhs

    @property
    def is_ground(self) -> bool:
        """Both sides are lattice constants."""
        return isinstance(self.lhs, LatticeElement) and isinstance(self.rhs, LatticeElement)


Constraint = SubtypeConstraint | QualConstraint


class ConstraintSet:
    """A mutable accumulator of constraints with existential bookkeeping.

    The polymorphic system (Section 3.2) existentially quantifies the
    qualifier variables that are purely local to a ``let`` body; since our
    variables are globally fresh, quantification reduces to *recording*
    which variables are local so that generalisation does not capture them
    in an outer scope.  :meth:`quantify` records such variables.
    """

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._subtype: list[SubtypeConstraint] = []
        self._atomic: list[QualConstraint] = []
        self._quantified: set[QualVar] = set()
        for c in constraints:
            self.add(c)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add(self, constraint: Constraint) -> None:
        if isinstance(constraint, SubtypeConstraint):
            self._subtype.append(constraint)
        elif isinstance(constraint, QualConstraint):
            if not constraint.is_trivial:
                self._atomic.append(constraint)
        else:
            raise TypeError(f"not a constraint: {constraint!r}")

    def add_subtype(self, lhs: QType, rhs: QType, origin: Origin = UNKNOWN_ORIGIN) -> None:
        """Record ``lhs <= rhs``."""
        self.add(SubtypeConstraint(lhs, rhs, origin))

    def add_equal(self, lhs: QType, rhs: QType, origin: Origin = UNKNOWN_ORIGIN) -> None:
        """Record ``lhs = rhs`` as the pair of subtype constraints."""
        self.add(SubtypeConstraint(lhs, rhs, origin))
        self.add(SubtypeConstraint(rhs, lhs, origin))

    def add_qual(self, lhs: Qual, rhs: Qual, origin: Origin = UNKNOWN_ORIGIN) -> None:
        """Record the atomic constraint ``lhs <= rhs``."""
        self.add(QualConstraint(lhs, rhs, origin))

    def add_qual_equal(self, lhs: Qual, rhs: Qual, origin: Origin = UNKNOWN_ORIGIN) -> None:
        """Record ``lhs = rhs`` as two atomic constraints."""
        self.add(QualConstraint(lhs, rhs, origin))
        self.add(QualConstraint(rhs, lhs, origin))

    def merge(self, other: "ConstraintSet") -> None:
        """Union another constraint set into this one (``C1 u C2``)."""
        self._subtype.extend(other._subtype)
        self._atomic.extend(other._atomic)
        self._quantified |= other._quantified

    def quantify(self, variables: Iterable[QualVar]) -> None:
        """Existentially quantify variables (``exists kappa. C``)."""
        self._quantified |= set(variables)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def subtype_constraints(self) -> tuple[SubtypeConstraint, ...]:
        return tuple(self._subtype)

    @property
    def atomic_constraints(self) -> tuple[QualConstraint, ...]:
        return tuple(self._atomic)

    @property
    def quantified(self) -> frozenset[QualVar]:
        return frozenset(self._quantified)

    def variables(self) -> set[QualVar]:
        """All qualifier variables mentioned by any constraint."""
        out: set[QualVar] = set()
        for sc in self._subtype:
            for t in (sc.lhs, sc.rhs):
                from .qtypes import qual_vars

                out |= qual_vars(t)
        for qc in self._atomic:
            for q in (qc.lhs, qc.rhs):
                if isinstance(q, QualVar):
                    out.add(q)
        return out

    def __len__(self) -> int:
        return len(self._subtype) + len(self._atomic)

    def __iter__(self) -> Iterator[Constraint]:
        yield from self._subtype
        yield from self._atomic

    def __str__(self) -> str:
        lines = [str(c) for c in self]
        if self._quantified:
            names = ", ".join(sorted(v.name for v in self._quantified))
            lines.insert(0, f"exists {names}.")
        return "\n".join(lines) if lines else "<empty>"

    def copy(self) -> "ConstraintSet":
        out = ConstraintSet()
        out._subtype = list(self._subtype)
        out._atomic = list(self._atomic)
        out._quantified = set(self._quantified)
        return out
