"""Standard qualifier definitions used throughout the paper.

The framework is parameterised by a user-supplied qualifier set.  This
module collects every qualifier the paper discusses so applications and
tests can share one vocabulary:

* ``const`` (positive) — ANSI C constness; the subject of Section 4.
* ``nonzero`` (negative) — a value statically known to be nonzero
  (the counterexample of Section 2.4 uses it).
* ``dynamic`` (positive) — binding-time analysis; its absence is
  ``static``, which is "just another name for the absence of dynamic".
* ``nonnull`` (negative) — lclint-style definitely-not-null pointers.
* ``tainted`` (positive) — secure information flow (the [VS97] instance);
  ``untainted`` is its absence.
* ``sorted`` (negative) — Section 2.3's sorted-list example.
* ``local`` (negative) — Titanium's local pointers (a pointer marked
  ``local`` must point to local memory; unmarked may be local or remote).

Each application typically builds a small lattice of just the qualifiers
it cares about; :func:`paper_figure2_lattice` reconstructs the lattice
drawn in Figure 2 (const x dynamic x nonzero).
"""

from __future__ import annotations

from .lattice import Qualifier, QualifierLattice, negative, positive

CONST: Qualifier = positive("const")
NONZERO: Qualifier = negative("nonzero")
DYNAMIC: Qualifier = positive("dynamic")
NONNULL: Qualifier = negative("nonnull")
TAINTED: Qualifier = positive("tainted")
SORTED: Qualifier = negative("sorted")
LOCAL: Qualifier = negative("local")

# Linearity / resource-tracking qualifiers (the use-exactly-once pack
# riding the flow-sensitive engine; see docs/FLOWSENS.md):
#
# * ``alloc`` (positive) — the value MAY hold a live allocation whose
#   release is this code's obligation.
# * ``freed`` (positive) — the value MAY already have been released;
#   freeing or using it again is a double-free / use-after-free.
# * ``released`` (negative) — the value has DEFINITELY been released on
#   every path reaching this point.  Negative polarity makes joins
#   intersect it, so must-information dies at merges exactly when one
#   incoming path did not release — which is what leak-on-exit-path
#   detection needs (``alloc`` present and ``released`` absent).
ALLOC: Qualifier = positive("alloc")
FREED: Qualifier = positive("freed")
RELEASED: Qualifier = negative("released")

#: Every qualifier mentioned in the paper, keyed by name.
ALL_QUALIFIERS: dict[str, Qualifier] = {
    q.name: q
    for q in (CONST, NONZERO, DYNAMIC, NONNULL, TAINTED, SORTED, LOCAL,
              ALLOC, FREED, RELEASED)
}


def const_lattice() -> QualifierLattice:
    """The lattice used by the Section 4 const-inference system."""
    return QualifierLattice([CONST])


def const_nonzero_lattice() -> QualifierLattice:
    """Lattice for the Section 2.4 soundness counterexample (const, nonzero)."""
    return QualifierLattice([CONST, NONZERO])


def paper_figure2_lattice() -> QualifierLattice:
    """The eight-element lattice of Figure 2: const x dynamic x nonzero."""
    return QualifierLattice([CONST, DYNAMIC, NONZERO])


def binding_time_lattice() -> QualifierLattice:
    """Binding-time analysis lattice: static (= absence) <= dynamic."""
    return QualifierLattice([DYNAMIC])


def taint_lattice() -> QualifierLattice:
    """Secure information flow: untainted (= absence) <= tainted."""
    return QualifierLattice([TAINTED])


def nonnull_lattice() -> QualifierLattice:
    """lclint-style nonnull pointers: nonnull <= possibly-null (absence)."""
    return QualifierLattice([NONNULL])


def sorted_lattice() -> QualifierLattice:
    """Sorted-list qualifier of Section 2.3: sorted <= possibly-unsorted."""
    return QualifierLattice([SORTED])


def local_lattice() -> QualifierLattice:
    """Titanium local pointers: local <= possibly-remote (absence)."""
    return QualifierLattice([LOCAL])


def resource_lattice() -> QualifierLattice:
    """The linearity pack's lattice: may-hold-allocation (``alloc``),
    may-be-freed (``freed``), definitely-released (``released``).

    Bottom is ``{released}`` (negatives are present at bottom): a value
    that never held an allocation carries no obligation.  A malloc seeds
    ``{alloc}`` (obligation incurred, not yet discharged); a free
    strongly updates to ``{freed, released}`` (discharged, and any later
    free/use is an error)."""
    return QualifierLattice([ALLOC, FREED, RELEASED])


def make_lattice(*names: str) -> QualifierLattice:
    """Build a lattice from any subset of the paper's qualifiers by name."""
    missing = [n for n in names if n not in ALL_QUALIFIERS]
    if missing:
        raise KeyError(f"unknown qualifier names: {missing}; have {sorted(ALL_QUALIFIERS)}")
    return QualifierLattice([ALL_QUALIFIERS[n] for n in names])
