"""Whole-program polymorphic inference: SCC wavefronts lifted to TUs.

The per-unit engine's wavefront scheduler
(:func:`repro.constinfer.engine._run_poly_wavefront`) parallelises over
function SCCs.  Here the same machinery is lifted one level: the
cross-TU function dependence graph (occurrence edges plus
function-pointer resolution edges) is projected onto translation units,
the TU-level condensation is walked in wavefronts, and each TU group —
one unit, or one cycle of mutually-dependent units — is a schedulable,
cacheable work item.  ``--jobs N`` therefore parallelises per TU, and
the content-addressed cache stores one summary per TU group.

Determinism at any job count, and across cold/warm cache mixes, comes
from **absolute** uid banding: the shared symbol layer (globals, struct
fields, library prototypes) always occupies
``[WHOLE_UID_BASE, WHOLE_UID_BASE + band)``, and TU group *k* of the
schedule always draws from band ``k + 1``.  Variable numbering is a
pure function of the linked program, never of thread interleaving or of
which groups were served from the cache — so a cached summary's
variables are value-equal (:class:`~repro.qual.qtypes.QualVar` compares
by uid and name) to the ones a live run would allocate, and summaries
re-link exactly.
"""

from __future__ import annotations

import time
from typing import Any
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..constinfer.analysis import ConstInference
from ..constinfer.cache import AnalysisCache
from ..constinfer.engine import (
    InferenceRun,
    StageTimings,
    _UID_BAND_SIZE,
    _create_shared_cells,
    _generalize_component_member,
    _solve,
)
from ..constinfer.fdg import FunctionDependenceGraph
from ..qual.lattice import QualifierLattice
from ..qual.qtypes import UidBand, use_uid_band
from .callgraph import WholeProgramCallGraph
from .linker import LinkedProgram
from .summary import (
    TUSummary,
    dependency_closure,
    load_summary,
    shared_layout_digest,
    store_summary,
    summary_source_key,
    unit_closure_digest,
)

#: Base uid of the whole-program band space.  Far above anything the
#: per-unit engines allocate, and constant across processes, so cached
#: summary blobs and live runs agree on every shared variable's uid.
WHOLE_UID_BASE = 1 << 40


@dataclass
class WholeProgramRun:
    """Outcome of one whole-program inference."""

    linked: LinkedProgram
    run: InferenceRun
    callgraph: WholeProgramCallGraph
    #: The TU-group schedule, level-major: each entry is the sorted tuple
    #: of unit filenames forming one group.
    schedule: list[tuple[str, ...]] = field(default_factory=list)
    summary_hits: int = 0
    summary_misses: int = 0
    link_seconds: float = 0.0


@dataclass
class _GroupTask:
    """One schedulable TU group with its precomputed identity."""

    index: int  # schedule position (band index - 1)
    units: tuple[str, ...]
    functions: tuple[str, ...]  # FDG order within the group
    band_base: int
    source_key: str


def _tu_graph(
    linked: LinkedProgram, fdg: FunctionDependenceGraph
) -> FunctionDependenceGraph:
    """Project the cross-TU function dependence graph onto units: an
    edge A -> B whenever some function homed in A depends on one homed
    in B.  Units with no functions still appear (isolated vertices) so
    their globals participate in the shared layer like everyone else."""
    tu_of = linked.tu_of_function
    vertices = set(linked.unit_names)
    edges: dict[str, set[str]] = {name: set() for name in vertices}
    for caller, callees in fdg.edges.items():
        caller_tu = tu_of.get(caller)
        if caller_tu is None:
            continue
        for callee in callees:
            callee_tu = tu_of.get(callee)
            if callee_tu is not None and callee_tu != caller_tu:
                edges[caller_tu].add(callee_tu)
    return FunctionDependenceGraph.from_edges(vertices, edges)


def tu_dependence_graph(linked: LinkedProgram) -> FunctionDependenceGraph:
    """The cross-TU dependence graph of a linked program, projected onto
    translation units — the public entry for the incremental re-link
    machinery (the private callers thread intermediate products)."""
    callgraph = WholeProgramCallGraph.build(linked.program)
    return _tu_graph(linked, callgraph.function_graph())


def closure_digests(
    linked: LinkedProgram,
    tu_graph: FunctionDependenceGraph | None = None,
) -> dict[str, str]:
    """Per-unit invalidation digests: ``unit -> unit_closure_digest``.

    A pure function of the linked program.  A resident session snapshots
    this map, and after an edit compares it against the fresh one —
    units whose digest moved are exactly the ones whose group summaries
    a re-link will re-analyse; everything else is served warm.
    """
    if tu_graph is None:
        tu_graph = tu_dependence_graph(linked)
    layout = shared_layout_digest(linked.program)
    return {
        unit: unit_closure_digest(unit, tu_graph, linked.sources, layout)
        for unit in linked.unit_names
    }


def affected_units(
    tu_graph: FunctionDependenceGraph, changed: set[str]
) -> tuple[str, ...]:
    """The units a re-link must re-analyse after ``changed`` units were
    edited: the changed units plus every transitive *dependent* (the
    inverse of :func:`~repro.whole.summary.dependency_closure`), sorted.
    Units outside this set keep their summaries byte-for-byte."""
    dependents: dict[str, set[str]] = {unit: set() for unit in tu_graph.vertices}
    for unit, deps in tu_graph.edges.items():
        for dep in deps:
            if dep in dependents:
                dependents[dep].add(unit)
    out: set[str] = set()
    work = [unit for unit in changed if unit in dependents]
    while work:
        unit = work.pop()
        if unit in out:
            continue
        out.add(unit)
        work.extend(dependents[unit])
    return tuple(sorted(out))


def _analyze_group(
    inference: ConstInference,
    task: _GroupTask,
    fdg: FunctionDependenceGraph,
    cache: AnalysisCache | None,
    lattice: QualifierLattice | None,
    options: dict[str, Any],
) -> tuple[TUSummary, bool]:
    """Worker: produce one group's summary — from the cache when warm,
    by banded constraint generation and per-SCC generalisation when
    cold.  Returns ``(summary, from_cache)``."""
    if cache is not None:
        cached = load_summary(
            cache, source_key=task.source_key, lattice=lattice, options=options
        )
        if cached is not None and cached.band_base == task.band_base:
            return cached, True

    program = inference.program
    view = inference.local_view()
    view.schemes = dict(inference.schemes)
    schemes: dict[str, object] = {}
    local_graph = fdg.restricted(set(task.functions))
    band = UidBand(task.band_base, _UID_BAND_SIZE)
    with use_uid_band(band):
        for component in local_graph.sccs():
            boundary = band.next
            mark = len(view.constraints)
            for name in component:
                view.signature_for(program.functions[name])
            for name in component:
                view.analyze_function(program.functions[name])
            local = view.constraints[mark:]
            for name in component:
                scheme = _generalize_component_member(view, name, local, boundary)
                view.schemes[name] = scheme
                schemes[name] = scheme

    summary = TUSummary(
        group=task.units,
        functions=task.functions,
        constraints=view.constraints,
        positions=view.positions,
        schemes=schemes,  # type: ignore[arg-type]
        band_base=task.band_base,
    )
    if cache is not None:
        store_summary(
            cache, summary, source_key=task.source_key, lattice=lattice, options=options
        )
    return summary, False


def run_whole_poly(
    linked: LinkedProgram,
    lattice: QualifierLattice | None = None,
    jobs: int = 1,
    cache: AnalysisCache | None = None,
    **inference_options: Any,
) -> WholeProgramRun:
    """Polymorphic inference over a linked program, scheduled per TU.

    ``jobs`` bounds the worker threads per wavefront level; the output —
    constraints, positions, schemes, classifications — is bit-identical
    at every job count and for any cold/warm cache mix.  ``cache``
    enables per-TU-group summary memoisation.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    start = time.perf_counter()
    program = linked.program
    inference = ConstInference(program, lattice, **inference_options)

    # Shared cells (eager pass and any stragglers the pass cannot see)
    # all draw from one absolute band below every group band.  Assign
    # ``_shared_band`` before the eager pass — global/field cells route
    # through ``use_uid_band(inference._shared_band)`` themselves, and
    # with it unset they would fall back to the global counter.  The
    # enclosing ``with`` covers prototype signatures, which band only
    # through the caller.
    shared_band = UidBand(WHOLE_UID_BASE, _UID_BAND_SIZE)
    inference._shared_band = shared_band
    with use_uid_band(shared_band):
        _create_shared_cells(inference)

    callgraph = WholeProgramCallGraph.build(program)
    fdg = callgraph.function_graph()
    tu_graph = _tu_graph(linked, fdg)

    tu_of = linked.tu_of_function
    layout = shared_layout_digest(program) if cache is not None else ""

    tasks: list[list[_GroupTask]] = []
    index = 0
    for level in tu_graph.wavefronts():
        level_tasks: list[_GroupTask] = []
        for component in level:
            units = tuple(sorted(component))
            unit_set = set(units)
            functions = tuple(
                name for name in fdg.vertices if tu_of.get(name) in unit_set
            )
            if not functions:
                continue  # nothing to analyse; globals are shared-layer
            source_key = ""
            if cache is not None:
                source_key = summary_source_key(
                    units,
                    dependency_closure(units, tu_graph),
                    linked.sources,
                    layout,
                    WHOLE_UID_BASE + (index + 1) * _UID_BAND_SIZE,
                )
            level_tasks.append(
                _GroupTask(
                    index=index,
                    units=units,
                    functions=functions,
                    band_base=WHOLE_UID_BASE + (index + 1) * _UID_BAND_SIZE,
                    source_key=source_key,
                )
            )
            index += 1
        if level_tasks:
            tasks.append(level_tasks)

    hits = misses = 0
    generalize_seconds = 0.0
    executor: ThreadPoolExecutor | None = None
    try:
        for level_tasks in tasks:
            if jobs > 1 and len(level_tasks) > 1:
                if executor is None:
                    executor = ThreadPoolExecutor(
                        max_workers=jobs, thread_name_prefix="tu-wavefront"
                    )
                results = list(
                    executor.map(
                        lambda task: _analyze_group(
                            inference, task, fdg, cache, lattice, inference_options
                        ),
                        level_tasks,
                    )
                )
            else:
                results = [
                    _analyze_group(
                        inference, task, fdg, cache, lattice, inference_options
                    )
                    for task in level_tasks
                ]

            gen_start = time.perf_counter()
            for task, (summary, from_cache) in zip(level_tasks, results):
                hits += from_cache
                misses += not from_cache
                inference.constraints.extend(summary.constraints)
                inference.positions.extend(summary.positions)
                for name in summary.functions:
                    inference.schemes[name] = summary.schemes[name]
            generalize_seconds += time.perf_counter() - gen_start
    finally:
        if executor is not None:
            executor.shutdown(wait=True)

    # Global initializers run last (Section 4.3), in their own
    # deterministic band just past every group band.
    final_band = UidBand(WHOLE_UID_BASE + (index + 1) * _UID_BAND_SIZE, _UID_BAND_SIZE)
    with use_uid_band(final_band):
        inference.analyze_global_initializers()
    inference._shared_band = None

    congen_done = time.perf_counter()
    solution = _solve(inference)
    end = time.perf_counter()
    timings = StageTimings(
        congen_seconds=congen_done - start - generalize_seconds,
        solve_seconds=end - congen_done,
        generalize_seconds=generalize_seconds,
        from_cache=misses == 0 and hits > 0,
    )
    run = InferenceRun(
        "whole-poly",
        solution,
        inference.positions,
        len(inference.constraints),
        end - start,
        inference,
        timings,
    )
    return WholeProgramRun(
        linked=linked,
        run=run,
        callgraph=callgraph,
        schedule=[task.units for level in tasks for task in level],
        summary_hits=hits,
        summary_misses=misses,
        link_seconds=end - start,
    )
