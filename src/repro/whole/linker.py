"""The linker model: C linkage rules over parsed translation units.

Linking several translation units means building one program-level
symbol table:

* **external linkage** (the default) — every declaration of a name
  refers to one program-wide symbol; ``extern`` declarations merge with
  the defining TU's definition;
* **internal linkage** (``static``) — the name is private to its TU.
  We implement this by deterministically renaming each static symbol to
  ``name@unit`` (``@`` cannot appear in a C identifier, so renamed
  symbols can never collide with source names) and rewriting every
  reference inside the unit, scope-aware, so two files may each define
  a ``static int counter`` without sharing qualifiers;
* **conflicts** — two external declarations of one symbol with
  structurally different qualified types (``const`` lives in the
  :mod:`repro.cfront.ctypes` terms, so qualifier conflicts are type
  conflicts), or two external *definitions* of one symbol, produce a
  :class:`LinkDiagnostic`.  Linking continues with the first definition,
  mirroring a linker's best-effort behaviour, so one bad symbol does not
  hide every other finding.

The result, :class:`LinkedProgram`, carries the merged
:class:`~repro.cfront.sema.Program` plus the map from every defined
function to its home unit — the input the cross-TU scheduler groups by.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from ..cfront import cast as ast
from ..cfront.cast import (
    CaseStmt,
    Compound,
    DeclStmt,
    DoWhileStmt,
    EnumDef,
    ExprStmt,
    ForStmt,
    FuncDecl,
    FuncDef,
    Ident,
    IfStmt,
    LabeledStmt,
    ParamDecl,
    ReturnStmt,
    StructDef,
    SwitchStmt,
    TranslationUnit,
    TypedefDecl,
    VarDecl,
    WhileStmt,
)
from ..cfront.cparser import parse_c
from ..cfront.ctypes import CArray, CFunc, CType, format_ctype
from ..cfront.sema import Program

#: Separator between a static symbol's source name and its unit label.
#: ``@`` is not a C identifier character, so renamed statics can never
#: collide with any source-level name.
STATIC_SEPARATOR = "@"


@dataclass(frozen=True)
class LinkDiagnostic:
    """One linker-level finding (conflicting types, multiple definition)."""

    kind: str  # "conflicting-types" | "multiple-definition"
    symbol: str
    message: str
    file: str = ""
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class LinkedSymbol:
    """One resolved program-level symbol."""

    name: str  # program-level name (statics carry the unit suffix)
    source_name: str  # the name as written in the source
    kind: str  # "function" | "object"
    linkage: str  # "external" | "internal"
    defining_unit: str | None  # filename of the defining TU, if any
    declaring_units: tuple[str, ...] = ()


@dataclass
class LinkedProgram:
    """Several translation units linked into one analysable program."""

    program: Program
    units: list[TranslationUnit]
    unit_names: list[str]
    sources: dict[str, str] = field(default_factory=dict)
    symbols: dict[str, LinkedSymbol] = field(default_factory=dict)
    diagnostics: list[LinkDiagnostic] = field(default_factory=list)
    #: Program-level function name -> filename of its home unit.
    tu_of_function: dict[str, str] = field(default_factory=dict)

    def internal_symbols(self) -> list[LinkedSymbol]:
        return [s for s in self.symbols.values() if s.linkage == "internal"]

    def exported_functions(self) -> list[str]:
        return sorted(
            name
            for name, symbol in self.symbols.items()
            if symbol.kind == "function"
            and symbol.linkage == "external"
            and symbol.defining_unit is not None
        )


# ---------------------------------------------------------------------------
# Static renaming: scope-aware identifier rewriting
# ---------------------------------------------------------------------------


def _unit_labels(names: list[str]) -> list[str]:
    """A short, unique, deterministic label per unit (the filename stem;
    duplicated stems get a positional suffix)."""
    stems = [Path(name).stem or f"unit{i}" for i, name in enumerate(names)]
    seen: dict[str, int] = {}
    labels: list[str] = []
    for stem in stems:
        count = seen.get(stem, 0)
        seen[stem] = count + 1
        labels.append(stem if count == 0 else f"{stem}~{count + 1}")
    return labels


def _rewrite_expr(e: ast.CExpr, renames: dict[str, str]) -> ast.CExpr:
    """Rebuild an expression with every free occurrence of a renamed
    identifier replaced.  Shadowing was already resolved by the caller
    (``renames`` holds only the names visible at this point)."""
    if isinstance(e, Ident):
        new = renames.get(e.name)
        return replace(e, name=new) if new is not None else e
    changes: dict[str, object] = {}
    for name in type(e).__dataclass_fields__:
        value = getattr(e, name)
        if isinstance(value, ast.CExpr):
            rewritten = _rewrite_expr(value, renames)
            if rewritten is not value:
                changes[name] = rewritten
        elif isinstance(value, tuple) and value and isinstance(value[0], ast.CExpr):
            rewritten_items = tuple(_rewrite_expr(item, renames) for item in value)
            if any(a is not b for a, b in zip(rewritten_items, value)):
                changes[name] = rewritten_items
    return replace(e, **changes) if changes else e


def _rewrite_opt_expr(
    e: ast.CExpr | None, renames: dict[str, str]
) -> ast.CExpr | None:
    return None if e is None else _rewrite_expr(e, renames)


def _rewrite_decl(decl: VarDecl, renames: dict[str, str]) -> VarDecl:
    init = _rewrite_opt_expr(decl.init, renames)
    return replace(decl, init=init) if init is not decl.init else decl


def _rewrite_stmt(s: ast.CStmt, renames: dict[str, str]) -> ast.CStmt:
    """Statement rewriting with C block scoping: a local declaration of a
    renamed name shadows it for the rest of the enclosing block (and for
    its own initializer, matching C's point-of-declaration rule)."""
    match s:
        case Compound(body=body):
            scope = dict(renames)
            out: list[ast.CStmt] = []
            changed = False
            for child in body:
                if isinstance(child, DeclStmt):
                    rewritten = _rewrite_declstmt(child, scope)
                else:
                    rewritten = _rewrite_stmt(child, scope)
                changed = changed or rewritten is not child
                out.append(rewritten)
            return replace(s, body=tuple(out)) if changed else s
        case DeclStmt():
            return _rewrite_declstmt(s, dict(renames))
        case ExprStmt(expr=e):
            rewritten_e = _rewrite_expr(e, renames)
            return replace(s, expr=rewritten_e) if rewritten_e is not e else s
        case IfStmt(cond=c, then=t, other=o):
            return replace(
                s,
                cond=_rewrite_expr(c, renames),
                then=_rewrite_stmt(t, renames),
                other=None if o is None else _rewrite_stmt(o, renames),
            )
        case WhileStmt(cond=c, body=b):
            return replace(
                s, cond=_rewrite_expr(c, renames), body=_rewrite_stmt(b, renames)
            )
        case DoWhileStmt(body=b, cond=c):
            return replace(
                s, body=_rewrite_stmt(b, renames), cond=_rewrite_expr(c, renames)
            )
        case ForStmt(init=init, cond=cond, step=step, body=b):
            scope = dict(renames)
            if isinstance(init, DeclStmt):
                new_init: object = _rewrite_declstmt(init, scope)
            else:
                new_init = _rewrite_opt_expr(init, scope)
            return replace(
                s,
                init=new_init,
                cond=_rewrite_opt_expr(cond, scope),
                step=_rewrite_opt_expr(step, scope),
                body=_rewrite_stmt(b, scope),
            )
        case ReturnStmt(value=v):
            rewritten_v = _rewrite_opt_expr(v, renames)
            return replace(s, value=rewritten_v) if rewritten_v is not v else s
        case SwitchStmt(value=v, body=b):
            return replace(
                s, value=_rewrite_expr(v, renames), body=_rewrite_stmt(b, renames)
            )
        case CaseStmt(value=v, stmt=inner):
            return replace(
                s,
                value=_rewrite_opt_expr(v, renames),
                stmt=_rewrite_stmt(inner, renames),
            )
        case LabeledStmt(stmt=inner):
            rewritten_inner = _rewrite_stmt(inner, renames)
            return replace(s, stmt=rewritten_inner) if rewritten_inner is not inner else s
        case _:
            return s


def _rewrite_declstmt(s: DeclStmt, scope: dict[str, str]) -> DeclStmt:
    """Rewrite a local declaration statement, *mutating* ``scope`` to
    drop renames shadowed by the declared names (C scoping: each name
    shadows from its own declarator onward, its initializer included)."""
    decls: list[VarDecl] = []
    changed = False
    for decl in s.decls:
        scope.pop(decl.name, None)
        rewritten = _rewrite_decl(decl, scope)
        changed = changed or rewritten is not decl
        decls.append(rewritten)
    return replace(s, decls=tuple(decls)) if changed else s


def _rewrite_funcdef(fdef: FuncDef, renames: dict[str, str]) -> FuncDef:
    scope = dict(renames)
    for param in fdef.params:
        if param.name:
            scope.pop(param.name, None)
    new_name = renames.get(fdef.name, fdef.name)
    body = _rewrite_stmt(fdef.body, scope)
    if new_name == fdef.name and body is fdef.body:
        return fdef
    assert isinstance(body, Compound)
    return replace(fdef, name=new_name, body=body)


def _rename_unit(unit: TranslationUnit, renames: dict[str, str]) -> TranslationUnit:
    """Apply a static-rename map to one unit's top level and bodies."""
    if not renames:
        return unit
    items: list[ast.TopLevel] = []
    for item in unit.items:
        if isinstance(item, FuncDef):
            items.append(_rewrite_funcdef(item, renames))
        elif isinstance(item, FuncDecl):
            new = renames.get(item.name)
            items.append(replace(item, name=new) if new is not None else item)
        elif isinstance(item, VarDecl):
            rewritten = _rewrite_decl(item, renames)
            new = renames.get(item.name)
            if new is not None:
                rewritten = replace(rewritten, name=new)
            items.append(rewritten)
        else:
            items.append(item)
    return TranslationUnit(items=items, filename=unit.filename)


# ---------------------------------------------------------------------------
# Conflict detection
# ---------------------------------------------------------------------------


#: Linkage-compatibility key for a symbol's type: a function's
#: ``(return, parameter types, varargs)`` or an object's ``(type,)``.
_TypeKey = tuple[object, ...]


def _strip_array_sizes(t: CType) -> CType:
    """Array sizes do not participate in linkage compatibility
    (``extern int a[];`` completes against ``int a[10];``)."""
    if isinstance(t, CArray):
        return replace(t, element=_strip_array_sizes(t.element), size=None)
    return t


def _function_type_key(
    ret: CType, params: tuple[ParamDecl, ...], varargs: bool
) -> _TypeKey:
    # Compare parameter *types*, not ParamDecls — parameter names differ
    # freely between declaration and definition.
    return (ret, tuple(_strip_array_sizes(p.type) for p in params), varargs)


def _describe_function_type(
    ret: CType, params: tuple[ParamDecl, ...], varargs: bool
) -> str:
    rendered = [format_ctype(p.type) for p in params]
    if varargs:
        rendered.append("...")
    return f"{format_ctype(ret)} ({', '.join(rendered)})"


@dataclass
class _SymbolSightings:
    """Every external declaration/definition of one name across units."""

    kind: str  # "function" | "object"
    #: (unit, type key, human-readable type, is_definition, line, column)
    sightings: list[tuple[str, _TypeKey, str, bool, int, int]] = field(
        default_factory=list
    )


def _collect_external_sightings(
    units: list[TranslationUnit],
) -> dict[str, _SymbolSightings]:
    table: dict[str, _SymbolSightings] = {}

    def sight(
        name: str, kind: str, unit: str, key: _TypeKey, shown: str,
        is_def: bool, line: int, col: int,
    ) -> None:
        entry = table.get(name)
        if entry is None:
            entry = table[name] = _SymbolSightings(kind)
        entry.sightings.append((unit, key, shown, is_def, line, col))

    for unit in units:
        for item in unit.items:
            if isinstance(item, (StructDef, EnumDef, TypedefDecl)):
                continue
            if getattr(item, "storage", None) == "static":
                continue
            if isinstance(item, FuncDef):
                sight(
                    item.name, "function", unit.filename,
                    _function_type_key(item.ret, item.params, item.varargs),
                    _describe_function_type(item.ret, item.params, item.varargs),
                    True, item.line, item.col,
                )
            elif isinstance(item, FuncDecl):
                sight(
                    item.name, "function", unit.filename,
                    _function_type_key(item.ret, item.params, item.varargs),
                    _describe_function_type(item.ret, item.params, item.varargs),
                    False, item.line, item.col,
                )
            elif isinstance(item, VarDecl):
                # ``extern`` (and tentative) declarations merge; an
                # initializer makes this the definition.
                sight(
                    item.name, "object", unit.filename,
                    (_strip_array_sizes(item.type),),
                    format_ctype(item.type),
                    item.init is not None, item.line, item.col,
                )
    return table


def _diagnose(table: dict[str, _SymbolSightings]) -> list[LinkDiagnostic]:
    diagnostics: list[LinkDiagnostic] = []
    for name in sorted(table):
        entry = table[name]
        definitions = [s for s in entry.sightings if s[3]]
        if len(definitions) > 1:
            first = definitions[0]
            for unit, _key, _shown, _is_def, line, col in definitions[1:]:
                diagnostics.append(
                    LinkDiagnostic(
                        kind="multiple-definition",
                        symbol=name,
                        message=(
                            f"multiple definition of '{name}' "
                            f"(first defined in {first[0]})"
                        ),
                        file=unit,
                        line=line,
                        column=col,
                    )
                )
        reference = entry.sightings[0]
        for unit, key, shown, _is_def, line, col in entry.sightings[1:]:
            if key != reference[1]:
                diagnostics.append(
                    LinkDiagnostic(
                        kind="conflicting-types",
                        symbol=name,
                        message=(
                            f"conflicting types for '{name}': "
                            f"'{shown}' here, "
                            f"'{reference[2]}' in {reference[0]}"
                        ),
                        file=unit,
                        line=line,
                        column=col,
                    )
                )
    return diagnostics


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def link_units(
    units: list[TranslationUnit], sources: dict[str, str] | None = None
) -> LinkedProgram:
    """Link parsed translation units into one :class:`LinkedProgram`."""
    unit_names = [unit.filename for unit in units]
    labels = _unit_labels(unit_names)

    symbols: dict[str, LinkedSymbol] = {}
    renamed_units: list[TranslationUnit] = []
    for unit, label in zip(units, labels):
        renames: dict[str, str] = {}
        for item in unit.items:
            if isinstance(item, (FuncDef, FuncDecl, VarDecl)):
                if item.storage == "static" and item.name not in renames:
                    renames[item.name] = f"{item.name}{STATIC_SEPARATOR}{label}"
        renamed_units.append(_rename_unit(unit, renames))
        for source_name, linked_name in sorted(renames.items()):
            is_function = any(
                isinstance(item, (FuncDef, FuncDecl)) and item.name == source_name
                for item in unit.items
            )
            symbols[linked_name] = LinkedSymbol(
                name=linked_name,
                source_name=source_name,
                kind="function" if is_function else "object",
                linkage="internal",
                defining_unit=unit.filename,
                declaring_units=(unit.filename,),
            )

    table = _collect_external_sightings(units)
    diagnostics = _diagnose(table)
    for name in sorted(table):
        entry = table[name]
        defining = next((s[0] for s in entry.sightings if s[3]), None)
        symbols[name] = LinkedSymbol(
            name=name,
            source_name=name,
            kind=entry.kind,
            linkage="external",
            defining_unit=defining,
            declaring_units=tuple(dict.fromkeys(s[0] for s in entry.sightings)),
        )

    program = Program.from_units(renamed_units)

    tu_of_function: dict[str, str] = {}
    for unit in renamed_units:
        for item in unit.items:
            if isinstance(item, FuncDef):
                tu_of_function.setdefault(item.name, unit.filename)
    # Program._add renames colliding definitions with a __dup suffix; map
    # those to the unit that contributed them (deterministic re-walk).
    for name, fdef in program.functions.items():
        tu_of_function.setdefault(name, fdef.file or "<input>")

    return LinkedProgram(
        program=program,
        units=renamed_units,
        unit_names=unit_names,
        sources=dict(sources or {}),
        symbols=symbols,
        diagnostics=diagnostics,
        tu_of_function=tu_of_function,
    )


def link_sources(sources: dict[str, str]) -> LinkedProgram:
    """Parse and link named source texts (filename -> C source)."""
    units = [parse_c(text, name) for name, text in sources.items()]
    return link_units(units, sources=sources)


def link_paths(paths: list[str | Path]) -> LinkedProgram:
    """Discover, parse, and link every ``.c`` file reachable from
    ``paths`` (explicit files plus recursive directory walks, sorted)."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.c"))
        else:
            files.add(path)
    sources = {
        str(path): path.read_text(encoding="utf-8", errors="replace")
        for path in sorted(files)
    }
    return link_sources(sources)
