"""Whole-program qualifier analysis: linker model, cross-TU call graph,
and link-time joining of per-TU polymorphic summaries.

The per-unit pipeline (``constinfer``, ``checker``) analyses one
translation unit at a time, so qualifier flows through ``extern``
symbols and indirect calls are invisible.  This package links several
translation units into one analysis, matching the paper's Section 4
evaluation over whole multi-file benchmarks:

* :mod:`repro.whole.linker` — a program-level symbol table implementing
  C linkage rules: ``extern`` declarations merge with the defining TU,
  ``static`` symbols stay TU-private (renamed deterministically), and
  conflicting qualified types across units are diagnosed;
* :mod:`repro.whole.callgraph` — a cross-TU call graph whose indirect
  call sites are resolved against the address-taken, type-compatible
  defined functions;
* :mod:`repro.whole.engine` — SCC-wavefront scheduling lifted to the
  cross-TU function dependence graph, grouped per TU so ``--jobs N``
  parallelism applies per translation unit;
* :mod:`repro.whole.summary` — each TU group's output (constraints,
  positions, and the ``forall kappa. rho \\ C`` scheme per exported
  symbol) serialized through the content-addressed analysis cache, so a
  warm rebuild re-links summaries without re-running constraint
  generation.
"""

from .callgraph import WholeProgramCallGraph
from .engine import (
    WholeProgramRun,
    affected_units,
    closure_digests,
    run_whole_poly,
    tu_dependence_graph,
)
from .linker import (
    LinkDiagnostic,
    LinkedProgram,
    LinkedSymbol,
    link_paths,
    link_sources,
    link_units,
)
from .ownership import infer_ownership_summaries, ownership_for_linked
from .summary import (
    TUSummary,
    dependency_closure,
    shared_layout_digest,
    unit_closure_digest,
)

__all__ = [
    "LinkDiagnostic",
    "LinkedProgram",
    "LinkedSymbol",
    "TUSummary",
    "WholeProgramCallGraph",
    "WholeProgramRun",
    "affected_units",
    "closure_digests",
    "dependency_closure",
    "infer_ownership_summaries",
    "link_paths",
    "link_sources",
    "link_units",
    "ownership_for_linked",
    "run_whole_poly",
    "shared_layout_digest",
    "tu_dependence_graph",
    "unit_closure_digest",
]
