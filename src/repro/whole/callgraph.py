"""The cross-TU call graph, with function-pointer resolution.

Direct calls give exact edges.  Calls through function pointers are
resolved conservatively: a site ``(*fp)(a, b)`` may target any defined
function whose **address is taken** somewhere in the program and whose
**type shape** is compatible with the site — matching arity (or varargs)
and, when the callee expression's static type is apparent, the same
per-parameter pointer depths.  This is the classic address-taken +
type-filter resolution; it over-approximates targets, which is the safe
direction for both scheduling and reporting.

The resolution edges feed two consumers:

* :meth:`WholeProgramCallGraph.function_graph` — the cross-TU function
  dependence graph (Definition 4 occurrence edges plus resolution
  edges) the wavefront scheduler condenses.  Extra edges only coarsen
  the schedule; they never change the inference result, because an
  indirect call constrains the *pointer cell*, which the address-taking
  assignment already connected to the target's signature.
* diagnostics/CLI — per-site target lists for the ``whole`` report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfront import cast as ast
from ..cfront.cast import Call, FuncDef
from ..cfront.ctypes import CArray, CFunc, CPointer, CType
from ..cfront.sema import (
    Program,
    address_taken_names,
    direct_callees,
    indirect_call_sites,
    occurring_names,
)
from ..constinfer.fdg import FunctionDependenceGraph


@dataclass(frozen=True)
class IndirectCallSite:
    """One call through a function-pointer value, with its resolved
    candidate targets (program-level function names, sorted)."""

    caller: str
    file: str
    line: int
    column: int
    arg_count: int
    targets: tuple[str, ...]


@dataclass
class WholeProgramCallGraph:
    """Call edges over a linked program's defined functions."""

    #: caller -> directly-called defined functions
    direct: dict[str, set[str]] = field(default_factory=dict)
    #: defined functions whose address is taken anywhere
    address_taken: set[str] = field(default_factory=set)
    #: resolved indirect call sites, in (caller, line, column) order
    indirect_sites: list[IndirectCallSite] = field(default_factory=list)
    #: caller -> resolved indirect targets (union over the caller's sites)
    indirect: dict[str, set[str]] = field(default_factory=dict)
    #: caller -> Definition 4 occurrence edges (defined names only)
    occurrence: dict[str, set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, program: Program) -> "WholeProgramCallGraph":
        defined = program.defined_function_names()
        known = defined | set(program.prototypes)
        graph = cls()

        for name in sorted(defined):
            fdef = program.functions[name]
            graph.direct[name] = direct_callees(fdef) & defined
            graph.occurrence[name] = occurring_names(fdef) & defined
            graph.address_taken.update(address_taken_names(fdef) & defined)
        # Global initializers take addresses too (function-pointer tables).
        for decl in program.globals.values():
            if decl.init is not None:
                for expr in _init_idents(decl.init):
                    if expr in defined:
                        graph.address_taken.add(expr)

        candidates = sorted(graph.address_taken)
        for name in sorted(defined):
            fdef = program.functions[name]
            sites = indirect_call_sites(fdef, known)
            if not sites:
                continue
            env = _declared_types(fdef, program)
            resolved: set[str] = set()
            for site in sorted(sites, key=lambda s: (s.line, s.col)):
                targets = _resolve_site(site, env, program, candidates)
                resolved.update(targets)
                graph.indirect_sites.append(
                    IndirectCallSite(
                        caller=name,
                        file=fdef.file,
                        line=site.line,
                        column=site.col,
                        arg_count=len(site.args),
                        targets=tuple(targets),
                    )
                )
            graph.indirect[name] = resolved
        return graph

    def edges(self) -> dict[str, set[str]]:
        """Occurrence edges plus indirect-resolution edges — the edge set
        of the cross-TU function dependence graph."""
        out: dict[str, set[str]] = {}
        for name in self.occurrence:
            out[name] = set(self.occurrence[name]) | self.indirect.get(name, set())
        return out

    def function_graph(self) -> FunctionDependenceGraph:
        return FunctionDependenceGraph.from_edges(
            set(self.occurrence), self.edges()
        )

    def stats(self) -> dict[str, int]:
        return {
            "functions": len(self.occurrence),
            "direct_edges": sum(len(v) for v in self.direct.values()),
            "occurrence_edges": sum(len(v) for v in self.occurrence.values()),
            "address_taken": len(self.address_taken),
            "indirect_sites": len(self.indirect_sites),
            "indirect_edges": sum(len(v) for v in self.indirect.values()),
        }


def _init_idents(expr: ast.CExpr) -> list[str]:
    """Identifier names inside a global initializer expression."""
    from ..cfront.sema import subexpressions

    return [
        e.name for e in subexpressions(expr) if isinstance(e, ast.Ident)
    ]


# ---------------------------------------------------------------------------
# Type-shape filtering
# ---------------------------------------------------------------------------


def _pointer_depth(t: CType) -> int:
    depth = 0
    while isinstance(t, (CPointer, CArray)):
        t = t.target if isinstance(t, CPointer) else t.element
        depth += 1
    return depth


def _shape_of_func(ret: CType, param_types: tuple[CType, ...]) -> tuple:
    return (
        _pointer_depth(ret),
        tuple(_pointer_depth(p) for p in param_types),
    )


def _declared_types(fdef: FuncDef, program: Program) -> dict[str, CType]:
    """Flat name -> declared C type environment for one function: its
    parameters and every local declaration (innermost last wins), plus
    globals as the fallback.  Coarse — it ignores block scoping — but a
    wrong entry can only *widen* a site's target set via the arity
    filter, never hide a real target."""
    env: dict[str, CType] = {}
    for decl in program.globals.values():
        env[decl.name] = decl.type
    for param in fdef.params:
        if param.name:
            env[param.name] = param.type
    from ..cfront.sema import statements

    for stmt in statements(fdef.body):
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                env[decl.name] = decl.type
        elif isinstance(stmt, ast.ForStmt) and isinstance(stmt.init, ast.DeclStmt):
            for decl in stmt.init.decls:
                env[decl.name] = decl.type
    return env


def _callee_ctype(e: ast.CExpr, env: dict[str, CType]) -> CFunc | None:
    """Best-effort static function type of an indirect callee
    expression; ``None`` when not apparent (the site then falls back to
    the arity-only filter)."""
    t = _callee_value_type(e, env)
    while isinstance(t, (CPointer, CArray)):
        t = t.target if isinstance(t, CPointer) else t.element
    return t if isinstance(t, CFunc) else None


def _callee_value_type(e: ast.CExpr, env: dict[str, CType]) -> CType | None:
    match e:
        case ast.Ident(name=n):
            return env.get(n)
        case ast.Unary(op="*", operand=inner, postfix=False):
            t = _callee_value_type(inner, env)
            if isinstance(t, CPointer):
                return t.target
            if isinstance(t, CArray):
                return t.element
            return t
        case ast.Index(base=b):
            t = _callee_value_type(b, env)
            if isinstance(t, CPointer):
                return t.target
            if isinstance(t, CArray):
                return t.element
            return None
        case ast.Cast(target_type=t):
            return t
        case ast.Comma(right=r):
            return _callee_value_type(r, env)
        case ast.Conditional(then=t):
            return _callee_value_type(t, env)
        case _:
            return None


def _arity_compatible(fdef: FuncDef, arg_count: int) -> bool:
    if fdef.varargs:
        return len(fdef.params) <= arg_count
    return len(fdef.params) == arg_count


def _resolve_site(
    site: Call,
    env: dict[str, CType],
    program: Program,
    candidates: list[str],
) -> list[str]:
    """Candidate targets for one indirect call: address-taken, defined,
    arity-compatible, and — when the callee's static type is apparent —
    matching per-parameter pointer depths."""
    arg_count = len(site.args)
    callee_type = _callee_ctype(site.func, env)
    want_shape = (
        _shape_of_func(callee_type.ret, callee_type.params)
        if callee_type is not None
        else None
    )
    out: list[str] = []
    for name in candidates:
        fdef = program.functions[name]
        if not _arity_compatible(fdef, arg_count):
            continue
        if want_shape is not None:
            have_shape = _shape_of_func(
                fdef.ret, tuple(p.type for p in fdef.params)
            )
            if have_shape != want_shape:
                continue
        out.append(name)
    return out
