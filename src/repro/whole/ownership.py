"""Whole-program ownership summaries: bottom-up over the call graph.

The per-function inference (:mod:`repro.flowsens.ownership`) summarises
one function *given* its callees' summaries.  This module supplies
them: the cross-TU function dependence graph's SCCs come out of
:meth:`~repro.constinfer.fdg.FunctionDependenceGraph.sccs` in reverse
topological order (callees first), so a single pass computes every
summary bottom-up.  Recursive components get a conservative fixpoint:
the first round treats in-component callees as unknown (the havoc
firewall — pessimistic, hence sound), then re-infers under the current
environment and widens with :func:`~repro.flowsens.ownership.join_summaries`
until the environment is stable — i.e. until re-inference is consistent
with what callers were told, the standard coinductive justification.
The verdict lattice is finite (three points per parameter, a boolean
for the return), so widening terminates; a bounded iteration count with
an all-escapes fallback guards the theory against implementation bugs.

:func:`ownership_for_linked` adds the cache tier: summaries are stored
per *unit*, keyed by the same dependency-closure source key as the
qualifier summaries in :mod:`repro.whole.summary` — a function's
ownership facts depend only on its unit's sources and the sources of
the units it (transitively) calls into, so an edit invalidates exactly
the dependency closure, and a fully-warm load skips inference entirely.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..cfront.sema import Program
from ..constinfer.cache import AnalysisCache
from ..flowsens.lower import DEFAULT_POLICY, LowerPolicy
from ..flowsens.ownership import (
    OwnershipSummary,
    escaping_summary,
    infer_function_ownership,
    join_summaries,
    with_summaries,
)
from ..qual.lattice import QualifierLattice
from ..qual.qualifiers import resource_lattice
from .callgraph import WholeProgramCallGraph
from .linker import LinkedProgram
from .summary import (
    dependency_closure,
    load_ownership,
    shared_layout_digest,
    store_ownership,
    summary_source_key,
)


def _infer_one(
    program: Program,
    name: str,
    lattice: QualifierLattice,
    policy: LowerPolicy,
    env: Mapping[str, OwnershipSummary],
) -> Optional[OwnershipSummary]:
    return infer_function_ownership(
        program.functions[name],
        lattice,
        with_summaries(policy, env),
    )


def _fix_scc(
    component: list[str],
    program: Program,
    lattice: QualifierLattice,
    policy: LowerPolicy,
    env: dict[str, OwnershipSummary],
) -> None:
    """Stabilise one recursive component under the conservative join."""
    members = sorted(component)
    widest = max(
        (len(program.functions[n].params) for n in members), default=0
    )
    # Each widening round moves at least one verdict strictly up a
    # three-point lattice (or flips returns_owned off), so this bound
    # is generous; overrunning it means a bug, answered with top.
    limit = 4 + len(members) * (widest + 2)
    current: dict[str, OwnershipSummary] = {}
    for _ in range(limit):
        scoped = {**env, **current}
        new: dict[str, OwnershipSummary] = {}
        for name in members:
            inferred = _infer_one(program, name, lattice, policy, scoped)
            if inferred is None:
                inferred = escaping_summary(program.functions[name])
            new[name] = inferred
        if not current:
            # Round 0 ran with in-component callees unknown (havoc):
            # already conservative, now check self-consistency.
            current = new
            continue
        widened = {
            name: join_summaries(current[name], new[name])
            for name in members
        }
        if widened == current:
            env.update(current)
            return
        current = widened
    env.update(
        {name: escaping_summary(program.functions[name]) for name in members}
    )


def infer_ownership_summaries(
    program: Program,
    callgraph: Optional[WholeProgramCallGraph] = None,
    policy: LowerPolicy = DEFAULT_POLICY,
) -> dict[str, OwnershipSummary]:
    """Summaries for every summarisable defined function, bottom-up.

    Functions that cannot be summarised (unstructured control flow) are
    simply absent — call sites naming them keep the unknown-callee
    havoc, which is the sound default.
    """
    cg = callgraph if callgraph is not None else WholeProgramCallGraph.build(program)
    fdg = cg.function_graph()
    lattice = resource_lattice()
    env: dict[str, OwnershipSummary] = {}
    for component in fdg.sccs():
        if fdg.is_recursive(component):
            _fix_scc(component, program, lattice, policy, env)
        else:
            name = component[0]
            summary = _infer_one(program, name, lattice, policy, env)
            if summary is not None:
                env[name] = summary
    return env


def ownership_for_linked(
    linked: LinkedProgram,
    cache: Optional[AnalysisCache] = None,
    policy: LowerPolicy = DEFAULT_POLICY,
) -> dict[str, OwnershipSummary]:
    """Ownership summaries for a linked program, cached per unit.

    Each unit's map is keyed by its dependency-closure sources (same
    key shape as the qualifier summaries), so a fully-warm load
    assembles the program's environment without running inference, and
    an edit invalidates exactly the closure of the edited unit.
    """
    program = linked.program
    cg = WholeProgramCallGraph.build(program)
    if cache is None or not linked.sources:
        return infer_ownership_summaries(program, cg, policy)

    from .engine import _tu_graph

    tu_graph = _tu_graph(linked, cg.function_graph())
    layout = shared_layout_digest(program)
    source_keys: dict[str, str] = {}
    warm: dict[str, dict[str, OwnershipSummary]] = {}
    for unit in linked.unit_names:
        skey = summary_source_key(
            (unit,),
            dependency_closure((unit,), tu_graph),
            linked.sources,
            layout,
            0,
        )
        source_keys[unit] = skey
        cached = load_ownership(cache, source_key=skey)
        if cached is not None:
            warm[unit] = cached
    if len(warm) == len(linked.unit_names):
        env: dict[str, OwnershipSummary] = {}
        for unit in linked.unit_names:
            env.update(warm[unit])
        return env

    env = infer_ownership_summaries(program, cg, policy)
    by_unit: dict[str, dict[str, OwnershipSummary]] = {
        unit: {} for unit in linked.unit_names
    }
    for name, summary in env.items():
        unit = linked.tu_of_function.get(name)
        if unit is not None and unit in by_unit:
            by_unit[unit][name] = summary
    for unit in linked.unit_names:
        store_ownership(cache, by_unit[unit], source_key=source_keys[unit])
    return env
