"""Per-TU polymorphic summaries and their cache serialization.

Each TU group (one translation unit, or one cycle of mutually-dependent
units) is analysed to a :class:`TUSummary`: the constraints and const
positions its functions generated, plus one generalized scheme
(``forall kappa. rho \\ C``) per function it defines.  Summaries are
stored in the content-addressed :class:`~repro.constinfer.cache.AnalysisCache`
so a warm rebuild loads them and goes straight to re-linking and the
solve — constraint generation is skipped per TU, and editing one unit
only re-analyses that unit and its (transitive) dependents.

Soundness of the partial-warm mix rests on two invariants:

* **value-equal variables** — :class:`~repro.qual.qtypes.QualVar`
  compares by ``(uid, name)``, and the whole-program engine allocates
  every variable from absolute, schedule-derived uid bands, so a cached
  blob's variables coincide exactly with the live run's for the same
  inputs;
* **interned constructors** — :class:`~repro.qual.qtypes.TypeConstructor`
  re-interns on unpickle, so cached schemes keep satisfying the
  ``constructor is REF`` identity checks in the analysis.

The cache key for a group covers the group's own sources, the sources
of every group it transitively depends on (their schemes shape this
group's constraints), the shared symbol layout (globals, struct fields,
and library prototypes — these determine the shared uid band's
contents), the group's band base, the lattice, the inference options,
and the analyser code fingerprint.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from ..cfront.sema import Program
from ..constinfer.analysis import ConstPosition
from ..constinfer.cache import AnalysisCache
from ..constinfer.fdg import FunctionDependenceGraph
from ..qual.constraints import QualConstraint
from ..qual.lattice import QualifierLattice
from ..qual.poly import QualScheme

#: Cache entry kind for per-TU-group summary blobs.
SUMMARY_KIND = "tu-summary"

#: Cache entry kind for per-unit ownership-summary maps
#: (:mod:`repro.whole.ownership`).  Keyed exactly like qualifier
#: summaries — a unit's ownership facts depend on the same dependency
#: closure, so one edit invalidates both kinds together.
OWNERSHIP_KIND = "tu-ownership"


@dataclass
class TUSummary:
    """One TU group's analysis output, ready to re-link."""

    group: tuple[str, ...]  # unit filenames in this group, sorted
    functions: tuple[str, ...]  # program-level function names, in order
    constraints: list[QualConstraint]
    positions: list[ConstPosition]
    schemes: dict[str, QualScheme]
    band_base: int


def shared_layout_digest(program: Program) -> str:
    """Digest of everything the shared uid band's contents depend on:
    global declarations, struct/union layouts, and undefined (library)
    prototypes, in creation order.  Editing a function body elsewhere
    keeps this stable (upstream summaries stay warm); adding a global or
    a struct field shifts the shared uids and correctly invalidates
    every summary."""
    digest = hashlib.sha256()
    for name, decl in program.globals.items():
        digest.update(f"g:{name}:{decl.type!r}\n".encode())
    for tag, struct in program.structs.items():
        digest.update(f"s:{tag}:{int(struct.is_union)}\n".encode())
        for field_decl in struct.fields:
            digest.update(f"f:{field_decl.name}:{field_decl.type!r}\n".encode())
    for name, proto in program.prototypes.items():
        if name not in program.functions:
            digest.update(
                f"p:{name}:{proto.ret!r}:"
                f"{tuple(p.type for p in proto.params)!r}:{proto.varargs}\n".encode()
            )
    return digest.hexdigest()


def dependency_closure(
    group: tuple[str, ...],
    tu_graph: FunctionDependenceGraph,
) -> tuple[str, ...]:
    """All units ``group``'s analysis depends on, itself included,
    sorted — the source set of its cache key and closure digest."""
    out: set[str] = set()
    work = list(group)
    while work:
        unit = work.pop()
        if unit in out:
            continue
        out.add(unit)
        work.extend(tu_graph.edges.get(unit, ()))
    return tuple(sorted(out))


def unit_closure_digest(
    unit: str,
    tu_graph: FunctionDependenceGraph,
    sources: dict[str, str],
    layout_digest: str,
) -> str:
    """Digest of everything that can invalidate ``unit``'s analysis: the
    texts of its dependency closure (the unit itself plus every unit
    whose schemes shape its constraints) and the shared symbol layout.

    This is the incremental-invalidation primitive the resident daemon
    keys on: after an edit, a unit whose closure digest is unchanged is
    guaranteed (by the same reasoning as the summary cache key) to
    re-link to an identical summary, so only units whose digest moved
    need re-analysis.
    """
    digest = hashlib.sha256()
    digest.update(f"unit:{unit}\nlayout:{layout_digest}\n".encode())
    for member in dependency_closure((unit,), tu_graph):
        digest.update(f"dep:{member}\n".encode())
        digest.update(sources.get(member, "").encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def summary_source_key(
    group: tuple[str, ...],
    closure_units: tuple[str, ...],
    sources: dict[str, str],
    layout_digest: str,
    band_base: int,
) -> str:
    """The ``source`` component of a summary's cache key: the group's
    and its dependency closure's unit texts (labelled, in deterministic
    order) plus the shared layout digest and the band base."""
    parts = [f"group:{','.join(group)}", f"layout:{layout_digest}", f"band:{band_base}"]
    for unit in closure_units:
        parts.append(f"unit:{unit}")
        parts.append(sources.get(unit, ""))
    return "\x00".join(parts)


def load_summary(
    cache: AnalysisCache,
    *,
    source_key: str,
    lattice: QualifierLattice | None,
    options: dict[str, Any],
) -> TUSummary | None:
    key = cache.key(
        SUMMARY_KIND, source=source_key, lattice=lattice, mode="whole", options=options
    )
    cached = cache.get(key)
    return cached if isinstance(cached, TUSummary) else None


def store_summary(
    cache: AnalysisCache,
    summary: TUSummary,
    *,
    source_key: str,
    lattice: QualifierLattice | None,
    options: dict[str, Any],
) -> None:
    key = cache.key(
        SUMMARY_KIND, source=source_key, lattice=lattice, mode="whole", options=options
    )
    cache.put(key, summary)


def ownership_cache_key(cache: AnalysisCache, source_key: str) -> str:
    """Cache key of one unit's ownership-summary map.  Exposed (rather
    than inlined into load/store) so tests can pin the invalidation
    invariant: editing a unit must move exactly the keys of its
    dependents' closures."""
    return cache.key(
        OWNERSHIP_KIND,
        source=source_key,
        lattice=None,
        mode="whole",
        options={"pack": "ownership"},
    )


def load_ownership(
    cache: AnalysisCache, *, source_key: str
) -> dict[str, Any] | None:
    cached = cache.get(ownership_cache_key(cache, source_key))
    return cached if isinstance(cached, dict) else None


def store_ownership(
    cache: AnalysisCache,
    summaries: dict[str, Any],
    *,
    source_key: str,
) -> None:
    cache.put(ownership_cache_key(cache, source_key), summaries)
