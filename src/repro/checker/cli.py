"""Command-line driver: ``python -m repro.checker [paths...]``.

Walks the given files/directories for C translation units, runs the
enabled checks, and emits the report in human, JSON, or SARIF form.
Baselines support ratchet-style CI: ``--baseline`` compares against a
checked-in fingerprint set (exit 1 on new *or* lost findings),
``--write-baseline`` refreshes it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .checks import ALL_CHECKS, DEFAULT_CHECKS
from .diagnostics import Baseline
from .render import render_report
from .runner import analyze


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checker",
        description="qlint: qualifier checks with constraint-path diagnostics",
    )
    parser.add_argument("paths", nargs="+", help=".c files or directories")
    parser.add_argument(
        "--checks",
        default=",".join(c.name for c in DEFAULT_CHECKS),
        help="comma-separated check names (default: all); known: "
        + ", ".join(c.name for c in ALL_CHECKS),
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--output", "-o", default=None, help="write the report here instead of stdout"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="process-pool width for batch runs"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed diagnostic cache directory (warm runs skip analysis)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="compare findings against this baseline file; exit 1 on drift",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        help="write the current findings' fingerprints to this baseline file",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in human output",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help="link every unit into one program before checking, so "
        "qualifier flows (and flow paths) cross translation units",
    )
    parser.add_argument(
        "--src-root",
        default=None,
        help="emit SARIF artifact URIs relative to this directory "
        "(declared as the SRCROOT uriBase)",
    )
    parser.add_argument(
        "--best-effort",
        action="store_true",
        help="resilient ingestion: preprocess #include/#define/#ifdef, "
        "recover from parse errors panic-mode style, and analyse "
        "whatever each unit kept (parse problems become parse-error/"
        "preprocessor findings; units get ok/partial/skipped status)",
    )
    parser.add_argument(
        "--include-dir",
        "-I",
        action="append",
        default=[],
        metavar="DIR",
        help="add DIR to the #include search path (best-effort mode; "
        "repeatable)",
    )
    return parser


def build_suggest_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checker suggest",
        description=(
            "rank inferred qualifier annotations (tainted, dynamic, "
            "alloc) per declaration, with feature-heuristic confidence"
        ),
    )
    parser.add_argument("paths", nargs="+", help=".c files or directories")
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=3,
        help="maximum suggestions per declaration (default: 3)",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help=(
            "link all units and infer cross-TU ownership summaries "
            "before suggesting (resolved callees stop counting as "
            "escapes, raising alloc confidence)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed cache for whole-program summaries",
    )
    parser.add_argument(
        "--output", "-o", default=None, help="write here instead of stdout"
    )
    parser.add_argument(
        "--include-dir",
        "-I",
        action="append",
        default=[],
        metavar="DIR",
        help="add DIR to the #include search path (repeatable)",
    )
    return parser


def suggest_main(argv: list[str]) -> int:
    from .runner import discover_files
    from .suggest import (
        render_suggestions_human,
        render_suggestions_json,
        suggest_paths,
        suggest_paths_whole,
    )

    args = build_suggest_parser().parse_args(argv)
    files = [str(p) for p in discover_files(args.paths)]
    if args.whole_program:
        from ..constinfer.cache import AnalysisCache

        cache = AnalysisCache(args.cache_dir) if args.cache_dir else None
        suggestions, errors = suggest_paths_whole(
            files,
            include_paths=tuple(args.include_dir),
            top=args.top,
            cache=cache,
        )
    else:
        suggestions, errors = suggest_paths(
            files, include_paths=tuple(args.include_dir), top=args.top
        )
    if args.format == "json":
        rendered = render_suggestions_json(suggestions)
    else:
        rendered = render_suggestions_human(suggestions)
    if args.output is not None:
        Path(args.output).write_text(rendered, encoding="utf-8")
    else:
        sys.stdout.write(rendered)
    for file, error in sorted(errors.items()):
        print(f"qlint: error: {file}: {error}", file=sys.stderr)
    return 1 if errors else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # ``qlint serve`` — hand the rest of the line to the resident
        # analysis daemon (``python -m repro.serve``).
        from ..serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "suggest":
        # ``qlint suggest`` — annotation-suggestion mode.
        return suggest_main(argv[1:])
    args = build_parser().parse_args(argv)
    check_names = [name.strip() for name in args.checks.split(",") if name.strip()]

    baseline = None
    if args.baseline is not None:
        baseline = Baseline.load(args.baseline)

    report = analyze(
        args.paths,
        checks=check_names,
        whole_program=args.whole_program,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        baseline=baseline,
        best_effort=args.best_effort,
        include_paths=tuple(args.include_dir),
    )

    if args.write_baseline is not None:
        Baseline.from_diagnostics(report.diagnostics).save(args.write_baseline)

    rendered = render_report(
        report,
        format=args.format,
        show_suppressed=args.show_suppressed,
        src_root=args.src_root,
    )
    if args.output is not None:
        Path(args.output).write_text(rendered, encoding="utf-8")
    else:
        sys.stdout.write(rendered)

    for file, error in sorted(report.errors.items()):
        print(f"qlint: error: {file}: {error}", file=sys.stderr)
    for file, status in sorted(report.unit_status.items()):
        if status != "ok":
            print(f"qlint: {status}: {file}", file=sys.stderr)
    if baseline is not None:
        for diag in report.new_findings:
            print(f"qlint: new finding not in baseline: {diag.span}: {diag.message}", file=sys.stderr)
        for fingerprint in sorted(report.lost_fingerprints):
            print(f"qlint: baselined finding no longer reported: {fingerprint}", file=sys.stderr)
        print(
            f"qlint: baseline: {len(report.new_findings)} new, "
            f"{len(report.lost_fingerprints)} lost",
            file=sys.stderr,
        )
        print(f"qlint: {report.summary()}", file=sys.stderr)
        return 1 if (report.new_findings or report.lost_fingerprints or report.errors) else 0

    print(f"qlint: {report.summary()}", file=sys.stderr)
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
