"""The qlint check registry.

A :class:`QualifierCheck` is pure data: which qualifier it tracks,
which library functions *seed* it (sources), which parameter positions
*sink* it, and the message templates.  The engine interprets the rules
against the shared constraint system, so adding a check means adding a
declaration here — no new traversal code.

The four built-in checks are the paper's Section 5 applications:

* ``tainted-format`` — untrusted data (Perl-style taint, [VS97] secure
  information flow) must not reach format-string or shell sinks;
* ``casts-away-const`` — the Table 2 casts that drop ``const`` from a
  referenced type (purely syntactic, via
  :func:`repro.cfront.cast.classify_cast`);
* ``nonnull-deref`` — values from may-return-NULL allocators must not
  be dereferenced while possibly null (lclint-style);
* ``binding-time`` — run-time (``dynamic``) values must not flow into
  positions a specializer needs static (the [DRT96] instance).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..qual.lattice import LatticeElement, QualifierLattice
from ..qual.qualifiers import ALL_QUALIFIERS


@dataclass(frozen=True)
class SourceRule:
    """Seed rule: calling ``function`` introduces the check's qualifier.

    ``where`` is ``"return"`` (the returned pointer's levels are seeded)
    or ``"param"`` (data written through pointer parameters is seeded —
    ``index`` selects one parameter, ``None`` seeds every pointer
    parameter, as for ``scanf``)."""

    function: str
    where: str = "return"
    index: int | None = None


@dataclass(frozen=True)
class SinkRule:
    """Sink rule: parameter ``index`` of ``function`` must satisfy the
    check's bound (e.g. be untainted)."""

    function: str
    index: int
    describe: str = ""


@dataclass(frozen=True)
class QualifierCheck:
    """One pluggable check: lattice qualifier + seed/sink rules +
    message templates."""

    name: str
    qualifier: str
    severity: str
    description: str
    #: Message for a violated sink; formatted with function/index/qualifier.
    message: str
    sources: tuple[SourceRule, ...] = ()
    sinks: tuple[SinkRule, ...] = ()
    #: nonnull-style: every dereference site is a sink obligation.
    deref_requires: bool = False
    #: casts-away-const-style: violations come from the syntactic cast
    #: classifier, not from the constraint system.
    syntactic_casts: bool = False
    #: linearity-pack checks: findings come from the flow-sensitive
    #: resource analysis (:mod:`repro.flowsens.linear`) over lowered
    #: function bodies, not from the flow-insensitive constraint system.
    flow_pack: bool = False

    @property
    def positive(self) -> bool:
        return ALL_QUALIFIERS[self.qualifier].positive

    def seed_element(self, lattice: QualifierLattice) -> LatticeElement:
        """The constant lower bound a source introduces.

        For a positive qualifier (tainted, dynamic) the seed *adds* the
        qualifier to the least solution: ``bottom + q``.  For a negative
        qualifier (nonnull) the seed *removes* the guarantee: ``bottom -
        q`` (joins intersect negative qualifiers, so one may-null source
        strips ``nonnull`` from everything it reaches)."""
        if self.positive:
            return lattice.atom(self.qualifier)
        return lattice.bottom.without_qualifier(self.qualifier)

    def sink_bound(self, lattice: QualifierLattice) -> LatticeElement:
        """The upper bound a sink asserts: ``assertion_bound`` is
        top-without-q for positive qualifiers ("must be untainted") and
        top-with-q for negative ones ("must be nonnull")."""
        return lattice.assertion_bound(self.qualifier)


TAINTED_FORMAT = QualifierCheck(
    name="tainted-format",
    qualifier="tainted",
    severity="error",
    description=(
        "Untrusted input (environment, sockets, stdin) must not reach "
        "format-string or shell-command sinks unsanitised."
    ),
    message=(
        "tainted data reaches {function} (argument {index}), "
        "which requires untainted input"
    ),
    sources=(
        SourceRule("getenv"),
        SourceRule("gets"),
        SourceRule("fgets"),
        SourceRule("fgets", where="param", index=0),
        SourceRule("gets", where="param", index=0),
        SourceRule("read", where="param", index=1),
        SourceRule("recv", where="param", index=1),
        SourceRule("scanf", where="param", index=None),
        SourceRule("readline"),
    ),
    sinks=(
        SinkRule("printf", 0, "format string"),
        SinkRule("fprintf", 1, "format string"),
        SinkRule("sprintf", 1, "format string"),
        SinkRule("snprintf", 2, "format string"),
        SinkRule("syslog", 1, "format string"),
        SinkRule("system", 0, "shell command"),
        SinkRule("popen", 0, "shell command"),
        SinkRule("execl", 0, "exec path"),
        SinkRule("execv", 0, "exec path"),
    ),
)

CASTS_AWAY_CONST = QualifierCheck(
    name="casts-away-const",
    qualifier="const",
    severity="warning",
    description=(
        "A cast whose target type drops const from a referenced type "
        "defeats const inference (Table 2's casts-away-const column)."
    ),
    message="cast from {source_type} to {target_type} casts away const",
    syntactic_casts=True,
)

NONNULL_DEREF = QualifierCheck(
    name="nonnull-deref",
    qualifier="nonnull",
    severity="error",
    description=(
        "Pointers returned by may-fail allocators must be checked "
        "before dereference."
    ),
    message=(
        "dereference of a possibly-NULL pointer "
        "(value may originate from {function})"
    ),
    sources=(
        SourceRule("malloc"),
        SourceRule("calloc"),
        SourceRule("realloc"),
        SourceRule("fopen"),
        SourceRule("getenv"),
        SourceRule("strchr"),
        SourceRule("strstr"),
    ),
    deref_requires=True,
)

BINDING_TIME = QualifierCheck(
    name="binding-time",
    qualifier="dynamic",
    severity="warning",
    description=(
        "Run-time (dynamic) values must not reach positions an offline "
        "partial evaluator needs static ([DRT96], Section 5)."
    ),
    message=(
        "dynamic (run-time) value reaches {function} (argument {index}), "
        "which must be static"
    ),
    sources=(
        SourceRule("getchar"),
        SourceRule("rand"),
        SourceRule("time"),
        SourceRule("read_input"),
        SourceRule("scanf", where="param", index=None),
    ),
    sinks=(
        SinkRule("alloca", 0, "static allocation size"),
        SinkRule("specialize", 0, "specialization index"),
        SinkRule("static_bound", 0, "static bound"),
    ),
)

DOUBLE_FREE = QualifierCheck(
    name="double-free",
    qualifier="freed",
    severity="error",
    description=(
        "A pointer that may already have been released must not be "
        "freed again (flow-sensitive linearity pack)."
    ),
    message="{variable} may already have been freed when it is freed again",
    flow_pack=True,
)

USE_AFTER_FREE = QualifierCheck(
    name="use-after-free",
    qualifier="freed",
    severity="error",
    description=(
        "A pointer that may already have been released must not be "
        "dereferenced, passed to a borrowing callee, or returned "
        "(flow-sensitive linearity pack)."
    ),
    message="{variable} may have been freed before this use",
    flow_pack=True,
)

RESOURCE_LEAK = QualifierCheck(
    name="resource-leak",
    qualifier="alloc",
    severity="warning",
    description=(
        "Every allocation must be released (or handed off) on every "
        "path out of the owning function (flow-sensitive linearity "
        "pack)."
    ),
    message=(
        "allocation held by {variable} may not be released on this "
        "exit path"
    ),
    flow_pack=True,
)

ALL_CHECKS: tuple[QualifierCheck, ...] = (
    TAINTED_FORMAT,
    CASTS_AWAY_CONST,
    NONNULL_DEREF,
    BINDING_TIME,
    DOUBLE_FREE,
    USE_AFTER_FREE,
    RESOURCE_LEAK,
)

#: The checks ``qlint`` runs when ``--checks`` is not given.  The
#: linearity pack is opt-in (``--checks double-free,use-after-free,
#: resource-leak`` or by listing all seven): its flow-sensitive pass
#: costs a per-function lowering + solve on top of the shared
#: inference, and existing baselines were recorded against the
#: flow-insensitive four.
DEFAULT_CHECKS: tuple[QualifierCheck, ...] = (
    TAINTED_FORMAT,
    CASTS_AWAY_CONST,
    NONNULL_DEREF,
    BINDING_TIME,
)

#: The three linearity-pack checks, for callers enabling them as a set.
FLOW_PACK_CHECKS: tuple[QualifierCheck, ...] = (
    DOUBLE_FREE,
    USE_AFTER_FREE,
    RESOURCE_LEAK,
)


def config_digest(check_names: tuple[str, ...]) -> str:
    """Digest of the active check *configuration*: the enabled names in
    order plus every enabled check's full rule set (sources, sinks,
    severities, message templates).  Cached diagnostics key on this, so
    editing a rule — adding a sink, changing a severity — invalidates
    warm results even though the source text and check names are
    unchanged.  ``QualifierCheck`` is pure frozen data, so its ``repr``
    is a faithful, deterministic serialization."""
    import hashlib

    digest = hashlib.sha256()
    for name in check_names:
        digest.update(f"{name}\n{check_by_name(name)!r}\n".encode())
    return digest.hexdigest()


def check_by_name(name: str) -> QualifierCheck:
    for check in ALL_CHECKS:
        if check.name == name:
            return check
    known = ", ".join(c.name for c in ALL_CHECKS)
    raise KeyError(f"unknown check {name!r} (known: {known})")


def lattice_for(checks: tuple[QualifierCheck, ...]) -> QualifierLattice:
    """The combined product lattice for one run: const (the base
    analysis requires it) plus every enabled check's qualifier.
    Coordinates are independent, so one inference run serves all
    checks."""
    from ..qual.qualifiers import make_lattice

    names: list[str] = ["const"]
    for check in checks:
        if check.qualifier not in names:
            names.append(check.qualifier)
    return make_lattice(*names)
