"""Annotation suggestion mode: ``qlint suggest``.

The paper's closing argument is that inference exists to *relieve the
programmer of writing annotations*.  This mode closes the loop: run the
same inference the checks use, then turn the least solution back into
ranked, per-declaration qualifier suggestions a maintainer could paste
into the source (or feed to the whole-program annotator).

Two inference passes feed it:

* the shared flow-insensitive pass (:class:`CheckerInference`) supplies
  value qualifiers — ``tainted`` and ``dynamic`` — read off the least
  solution of each declaration's qualifier variables;
* the flow-sensitive linearity pack (:mod:`repro.flowsens.linear`)
  supplies ``alloc`` for declarations observed holding an allocation
  they are responsible for.

Each suggestion carries a **confidence** in ``(0, 1]`` computed from
cheap, monotone feature heuristics:

* *flow-path length* — the shortest constraint path from a seed to the
  declaration; short paths (direct assignment from ``getenv``) are
  trustworthy, long chains through merges are diluted;
* *fan-in* — how many constraints flow into the declaration's
  variables; high fan-in means many unrelated writers, so the inferred
  qualifier may be an artifact of one rare path;
* *cast proximity* — casts in the declaring function launder qualifiers
  past the type system, so every cast discounts the evidence.

Rankings are deterministic: ties break on qualifier name, and the
output order is (file, line, col, declaration).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, Optional

from ..cfront.cast import Cast, DeclStmt, ForStmt, FuncDef, VarDecl
from ..cfront.sema import Program, expressions_of, statements
from ..constinfer.analysis import TranslatedType
from ..constinfer.engine import _create_shared_cells
from ..qual.lattice import QualifierLattice
from ..qual.qtypes import QualVar, quals_of
from ..qual.solver import (
    Solution,
    UnsatisfiableError,
    shortest_flow_path,
    solve,
)


@dataclass(frozen=True)
class Suggestion:
    """One ranked qualifier suggestion for one declaration."""

    file: str
    line: int
    col: int
    function: str
    #: declaration name; for ``kind == "return"`` the function's name
    name: str
    kind: str  # "param" | "local" | "return"
    qualifier: str
    confidence: float
    path_length: int
    fan_in: int
    casts: int

    def to_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "name": self.name,
            "kind": self.kind,
            "qualifier": self.qualifier,
            "confidence": self.confidence,
            "features": {
                "pathLength": self.path_length,
                "fanIn": self.fan_in,
                "casts": self.casts,
            },
        }


#: value qualifiers the suggestion mode reads off the least solution
_VALUE_QUALIFIERS = ("tainted", "dynamic")


def confidence(
    path_length: int, fan_in: int, casts: int, escapes: int = 0
) -> float:
    """Feature-heuristic confidence in ``(0, 1]``; monotone decreasing
    in every feature, 1.0 for a direct single-writer, cast-free flow.

    ``escapes`` counts the declaring function's residual unknown-callee
    havocs: each one is a door the resource could have left through
    that the analysis could not see, so it discounts the evidence.
    Ownership summaries (whole-program mode) resolve call sites and
    lower this count — the same declaration gains confidence when its
    callees are summarised."""
    path_factor = 1.0 / (1.0 + 0.25 * max(0, path_length - 1))
    fan_factor = 1.0 / (1.0 + 0.15 * max(0, fan_in - 1))
    cast_factor = 0.9 ** min(casts, 5)
    escape_factor = 0.93 ** min(escapes, 5)
    return round(path_factor * fan_factor * cast_factor * escape_factor, 4)


def _function_casts(fdef: FuncDef) -> int:
    n = 0
    for e in expressions_of(fdef.body):
        if isinstance(e, Cast):
            n += 1
    return n


def _local_decls(fdef: FuncDef) -> Iterator[VarDecl]:
    for s in statements(fdef.body):
        if isinstance(s, DeclStmt):
            yield from s.decls
        elif isinstance(s, ForStmt) and isinstance(s.init, DeclStmt):
            yield from s.init.decls


@dataclass(frozen=True)
class _Declaration:
    """One suggestion target: a cell plus where to print it."""

    function: str
    name: str
    kind: str
    file: str
    line: int
    col: int
    cell: Optional[TranslatedType]
    casts: int


def _declarations(program: Program, inference) -> list[_Declaration]:
    out: list[_Declaration] = []
    for fdef in program.functions.values():
        sig = inference.signatures.get(fdef.name)
        if sig is None:
            continue
        casts = _function_casts(fdef)
        for param, cell in zip(fdef.params, sig.params):
            if param.name is None:
                continue
            out.append(
                _Declaration(
                    function=fdef.name,
                    name=param.name,
                    kind="param",
                    file=fdef.file,
                    line=param.line,
                    col=param.col,
                    cell=cell,
                    casts=casts,
                )
            )
        for decl in _local_decls(fdef):
            cell = inference.recorded_cells.get(
                (decl.file, decl.line, decl.col)
            )
            out.append(
                _Declaration(
                    function=fdef.name,
                    name=decl.name,
                    kind="local",
                    file=fdef.file,
                    line=decl.line,
                    col=decl.col,
                    cell=cell,
                    casts=casts,
                )
            )
        out.append(
            _Declaration(
                function=fdef.name,
                name=fdef.name,
                kind="return",
                file=fdef.file,
                line=fdef.line,
                col=fdef.col,
                cell=sig.ret_cell,
                casts=casts,
            )
        )
    return out


def _value_suggestions(program: Program) -> list[Suggestion]:
    """Suggestions from the shared flow-insensitive inference."""
    from .checks import DEFAULT_CHECKS, lattice_for
    from .engine import CheckerInference, _seed_checks

    value_checks = tuple(
        c for c in DEFAULT_CHECKS if not c.syntactic_casts
    )
    lattice = lattice_for(value_checks)

    class _Recording(CheckerInference):
        def __init__(self, *args: object, **kwargs: object) -> None:
            super().__init__(*args, **kwargs)
            self.recorded_cells: dict[
                tuple[str | None, int, int], TranslatedType
            ] = {}

        def cell_for_type(self, ct, line=0, col=0, file=None):  # type: ignore[no-untyped-def]
            cell = super().cell_for_type(ct, line, col, file)
            key = (file or self._current_file, line, col)
            self.recorded_cells.setdefault(key, cell)
            return cell

    inference = _Recording(program, lattice)
    _create_shared_cells(inference)
    for fdef in program.functions.values():
        inference.signature_for(fdef)
    for fdef in program.functions.values():
        inference.analyze_function(fdef)
    inference.analyze_global_initializers()
    _seed_checks(inference, value_checks)

    decls = _declarations(program, inference)
    extra: list[QualVar] = []
    for d in decls:
        if d.cell is not None:
            extra.extend(
                q for q in quals_of(d.cell.rvalue) if isinstance(q, QualVar)
            )
    try:
        solution = solve(inference.constraints, lattice, extra_vars=extra)
    except UnsatisfiableError:
        return []

    fan_in: dict[object, int] = {}
    for c in inference.constraints:
        fan_in[c.rhs] = fan_in.get(c.rhs, 0) + 1

    out: list[Suggestion] = []
    for d in decls:
        if d.cell is None:
            continue
        qvars = [
            q for q in quals_of(d.cell.rvalue) if isinstance(q, QualVar)
        ]
        if not qvars:
            continue
        for qualifier in _VALUE_QUALIFIERS:
            try:
                bound = lattice.top.without_qualifier(qualifier)
            except Exception:
                continue
            carriers = [
                q for q in qvars if solution.least_of(q).has(qualifier)
            ]
            if not carriers:
                continue
            best_path = _best_path(
                inference.constraints, lattice, carriers, bound
            )
            total_fan_in = sum(fan_in.get(q, 0) for q in carriers)
            out.append(
                Suggestion(
                    file=d.file,
                    line=d.line,
                    col=d.col,
                    function=d.function,
                    name=d.name,
                    kind=d.kind,
                    qualifier=qualifier,
                    confidence=confidence(best_path, total_fan_in, d.casts),
                    path_length=best_path,
                    fan_in=total_fan_in,
                    casts=d.casts,
                )
            )
    return out


def _best_path(
    constraints, lattice: QualifierLattice, carriers, bound
) -> int:
    best: int | None = None
    for q in carriers:
        path = shortest_flow_path(constraints, lattice, q, bound)
        if path is not None and (best is None or len(path) < best):
            best = len(path)
    return best if best is not None else 1


def _resource_suggestions(
    program: Program, ownership=None
) -> list[Suggestion]:
    """``alloc`` suggestions from the flow-sensitive linearity pack.

    ``ownership`` carries inferred callee summaries (whole-program
    mode): summarised call sites stop counting as escapes, so the same
    declaration's confidence rises when its callees are resolved."""
    from ..flowsens.linear import analyze_lowered
    from ..flowsens.lower import DEFAULT_POLICY, lower_function
    from ..qual.qualifiers import resource_lattice

    policy = DEFAULT_POLICY
    if ownership:
        from ..flowsens.ownership import with_summaries

        policy = with_summaries(DEFAULT_POLICY, ownership)
    out: list[Suggestion] = []
    lattice = resource_lattice()
    for fdef in program.functions.values():
        try:
            lowered = lower_function(fdef, lattice, policy)
            if lowered.unstructured:
                continue
            report = analyze_lowered(lowered, lattice)
        except Exception:
            continue
        casts = _function_casts(fdef)
        spans: dict[str, tuple[str, int, int]] = {}
        for param in fdef.params:
            if param.name:
                spans[param.name] = ("param", param.line, param.col)
        for decl in _local_decls(fdef):
            spans.setdefault(decl.name, ("local", decl.line, decl.col))
        for var, ev in sorted(report.evidence.items()):
            kind, line, col = spans.get(var, ("local", ev.line, ev.col))
            out.append(
                Suggestion(
                    file=fdef.file,
                    line=line,
                    col=col,
                    function=fdef.name,
                    name=var,
                    kind=kind,
                    qualifier=ev.qualifier,
                    confidence=confidence(
                        ev.path_length,
                        ev.fan_in,
                        casts,
                        lowered.escape_calls,
                    ),
                    path_length=ev.path_length,
                    fan_in=ev.fan_in,
                    casts=casts,
                )
            )
    return out


def suggest_program(
    program: Program, top: int = 3, *, ownership=None
) -> list[Suggestion]:
    """Ranked qualifier suggestions for every declaration in
    ``program``; at most ``top`` per declaration."""
    all_suggestions = _value_suggestions(program) + _resource_suggestions(
        program, ownership
    )
    grouped: dict[tuple[str, int, int, str], list[Suggestion]] = {}
    for s in all_suggestions:
        grouped.setdefault((s.file, s.line, s.col, s.name), []).append(s)
    out: list[Suggestion] = []
    for key in sorted(grouped):
        ranked = sorted(
            grouped[key], key=lambda s: (-s.confidence, s.qualifier)
        )
        # one suggestion per qualifier: keep the most confident
        seen: set[str] = set()
        unique = []
        for s in ranked:
            if s.qualifier in seen:
                continue
            seen.add(s.qualifier)
            unique.append(s)
        out.extend(unique[:top])
    return out


def suggest_source(
    source: str,
    filename: str = "<input>",
    include_paths: tuple[str, ...] = (),
    top: int = 3,
) -> list[Suggestion]:
    """Best-effort suggestions for one translation unit."""
    from ..cfront.cparser import parse_c_resilient

    result = parse_c_resilient(source, filename, include_paths=include_paths)
    try:
        program = Program.from_units([result.unit])
    except Exception:
        return []
    try:
        return suggest_program(program, top=top)
    except Exception:
        return []


def suggest_paths(
    paths: list[str],
    include_paths: tuple[str, ...] = (),
    top: int = 3,
) -> tuple[list[Suggestion], dict[str, str]]:
    """Suggestions for several files, concatenated in path order.

    Returns ``(suggestions, errors)``; unreadable files land in
    ``errors`` instead of raising, mirroring the checker runner."""
    out: list[Suggestion] = []
    errors: dict[str, str] = {}
    for path in paths:
        try:
            with open(path, "r") as handle:
                source = handle.read()
        except OSError as exc:
            errors[str(path)] = str(exc)
            continue
        out.extend(
            suggest_source(
                source, str(path), include_paths=include_paths, top=top
            )
        )
    return out, errors


def suggest_paths_whole(
    paths: list[str],
    include_paths: tuple[str, ...] = (),
    top: int = 3,
    sources=None,
    cache=None,
    parse_unit=None,
) -> tuple[list[Suggestion], dict[str, str]]:
    """Whole-program suggestions: link every unit, infer ownership
    summaries bottom-up over the cross-TU call graph, and suggest over
    the merged program — so ``alloc`` confidence reflects resolved
    callees instead of discounting every cross-unit call as an escape.

    The daemon hooks mirror :func:`repro.checker.runner.check_whole_program`:
    ``sources`` overlays in-memory unit text, ``cache`` lends a
    long-lived :class:`~repro.constinfer.cache.AnalysisCache` for the
    per-unit ownership tier, and ``parse_unit`` replaces the stock
    resilient parser.  CLI and daemon both funnel through here, which
    is what makes their outputs byte-identical."""
    from ..cfront.cparser import parse_c_resilient
    from ..whole.linker import link_units
    from .runner import discover_files

    files = discover_files(paths, extra=sources or ())
    out: list[Suggestion] = []
    errors: dict[str, str] = {}
    unit_sources: dict[str, str] = {}
    for path in files:
        text = sources.get(str(path)) if sources is not None else None
        if text is None:
            try:
                with open(path, "r") as handle:
                    text = handle.read()
            except OSError as exc:
                errors[str(path)] = str(exc)
                continue
        unit_sources[str(path)] = text

    units = []
    for name in sorted(unit_sources):
        text = unit_sources[name]
        try:
            if parse_unit is not None:
                parsed = parse_unit(name, text)
            else:
                parsed = parse_c_resilient(
                    text, name, include_paths=include_paths
                )
        except Exception as exc:
            errors[name] = f"{type(exc).__name__}: {exc}"
            continue
        unit = getattr(parsed, "unit", parsed)
        if unit is not None:
            units.append(unit)

    try:
        linked = link_units(units, sources=unit_sources)
    except Exception as exc:
        errors["<whole-program>"] = f"{type(exc).__name__}: {exc}"
        return out, errors
    try:
        from ..whole.ownership import ownership_for_linked

        ownership = ownership_for_linked(linked, cache=cache)
    except Exception:
        ownership = None
    try:
        out = suggest_program(linked.program, top=top, ownership=ownership)
    except Exception:
        out = []
    return out, errors


# ---------------------------------------------------------------------------
# Rendering (shared verbatim by CLI and daemon)
# ---------------------------------------------------------------------------


def render_suggestions_human(suggestions: list[Suggestion]) -> str:
    if not suggestions:
        return "no suggestions\n"
    lines: list[str] = []
    current: tuple[str, int, int, str] | None = None
    for s in suggestions:
        key = (s.file, s.line, s.col, s.name)
        if key != current:
            current = key
            where = f"{s.file}:{s.line}:{s.col}"
            lines.append(
                f"{where}: {s.kind} '{s.name}' in {s.function}()"
            )
        lines.append(
            f"    {s.qualifier:<10} confidence {s.confidence:.4f}  "
            f"(path {s.path_length}, fan-in {s.fan_in}, "
            f"casts {s.casts})"
        )
    lines.append("")
    lines.append(f"{len(suggestions)} suggestion(s)")
    return "\n".join(lines) + "\n"


def render_suggestions_json(suggestions: list[Suggestion]) -> str:
    payload = {
        "version": 1,
        "suggestions": [s.to_dict() for s in suggestions],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
