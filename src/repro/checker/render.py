"""Diagnostic renderers: human (carets + flow notes), JSON, SARIF 2.1.0.

All three consume the same :class:`~repro.checker.diagnostics.Diagnostic`
list; the renderers are pure functions of (diagnostics, sources) so the
runner can emit any format from one analysis pass.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

from .checks import ALL_CHECKS
from .diagnostics import Diagnostic, Span

QLINT_VERSION = "1.0.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


# ---------------------------------------------------------------------------
# Human
# ---------------------------------------------------------------------------


def _source_excerpt(sources: Mapping[str, str], span: Span) -> list[str]:
    """The flagged line plus a caret marker, gcc-style; empty when the
    span or the source text is unavailable."""
    text = sources.get(span.file)
    if text is None or not span.is_valid:
        return []
    lines = text.splitlines()
    if span.line > len(lines):
        return []
    line = lines[span.line - 1]
    out = [f"    {line}"]
    if span.column > 0:
        out.append("    " + " " * (span.column - 1) + "^")
    return out


def render_human(
    diagnostics: Iterable[Diagnostic],
    sources: Mapping[str, str] | None = None,
    show_suppressed: bool = False,
) -> str:
    """Compiler-style report: one primary line per finding, the flagged
    source line with a caret, then the numbered qualifier-flow trace."""
    sources = sources or {}
    blocks: list[str] = []
    for diag in diagnostics:
        if diag.suppressed and not show_suppressed:
            continue
        suffix = " (suppressed)" if diag.suppressed else ""
        lines = [f"{diag.span}: {diag.severity}: {diag.message} [{diag.check}]{suffix}"]
        lines += _source_excerpt(sources, diag.span)
        if diag.flow:
            lines.append("  qualifier flow:")
            for index, step in enumerate(diag.flow, start=1):
                where = f" ({step.span})" if step.span.is_valid else ""
                lines.append(f"    {index}. {step.note}{where}")
                for excerpt in _source_excerpt(sources, step.span):
                    lines.append("  " + excerpt)
        blocks.append("\n".join(lines))
    if not blocks:
        return "qlint: no findings\n"
    return "\n\n".join(blocks) + "\n"


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------


def render_json(
    diagnostics: Iterable[Diagnostic],
    unit_status: Mapping[str, str] | None = None,
) -> str:
    payload = {
        "tool": "qlint",
        "version": QLINT_VERSION,
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    if unit_status:
        # Best-effort ingestion only — inserted before serialisation so
        # key order stays deterministic, omitted entirely otherwise so
        # strict-mode output is byte-identical to the pre-ingestion tool.
        payload["units"] = {k: unit_status[k] for k in sorted(unit_status)}
    return json.dumps(payload, indent=2) + "\n"


# ---------------------------------------------------------------------------
# SARIF 2.1.0
# ---------------------------------------------------------------------------

_SARIF_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _relative_uri(file: str, src_root: str | None) -> tuple[str, bool]:
    """(uri, is_relative): the file as a URI under ``src_root`` when it
    lies inside it, else the file unchanged.  SARIF URIs always use
    forward slashes."""
    if src_root is not None:
        try:
            relative = Path(file).resolve().relative_to(Path(src_root).resolve())
        except (ValueError, OSError):
            pass
        else:
            return relative.as_posix(), True
    return Path(file).as_posix(), False


def _sarif_location(
    span: Span, note: str | None = None, src_root: str | None = None
) -> dict:
    region: dict = {"startLine": span.line}
    if span.column > 0:
        region["startColumn"] = span.column
    uri, is_relative = _relative_uri(span.file, src_root)
    artifact: dict = {"uri": uri}
    if is_relative:
        artifact["uriBaseId"] = "SRCROOT"
    location: dict = {
        "physicalLocation": {
            "artifactLocation": artifact,
            "region": region,
        }
    }
    if note is not None:
        location["message"] = {"text": note}
    return location


def _sarif_rules(diagnostics: list[Diagnostic]) -> list[dict]:
    """Rule metadata for every check that produced a finding, plus any
    registered check, so ruleIndex lookups stay stable."""
    described = {c.name: c for c in ALL_CHECKS}
    rules: list[dict] = []
    seen: set[str] = set()
    for name in list(described) + [d.check for d in diagnostics]:
        if name in seen:
            continue
        seen.add(name)
        check = described.get(name)
        rule: dict = {"id": name}
        if check is not None:
            rule["shortDescription"] = {"text": check.description}
            rule["defaultConfiguration"] = {
                "level": _SARIF_LEVELS.get(check.severity, "warning")
            }
        rules.append(rule)
    return rules


def render_sarif(
    diagnostics: Iterable[Diagnostic],
    src_root: str | None = None,
    unit_status: Mapping[str, str] | None = None,
) -> str:
    """A SARIF 2.1.0 log: one run, one result per diagnostic, the
    qualifier-flow trace as a codeFlow/threadFlow, fingerprints under
    ``partialFingerprints``, suppressions as kind ``inSource``.

    With ``src_root``, artifact URIs for files under it are emitted
    repo-relative against a ``SRCROOT`` uriBase (declared in the run's
    ``originalUriBaseIds``), so logs are machine-portable: the same
    checkout analysed at two absolute paths produces byte-identical
    SARIF."""
    diagnostics = list(diagnostics)
    rules = _sarif_rules(diagnostics)
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}

    results = []
    for diag in diagnostics:
        result: dict = {
            "ruleId": diag.check,
            "ruleIndex": rule_index[diag.check],
            "level": _SARIF_LEVELS.get(diag.severity, "warning"),
            "message": {"text": diag.message},
        }
        if diag.span.is_valid:
            result["locations"] = [_sarif_location(diag.span, src_root=src_root)]
        if diag.fingerprint:
            result["partialFingerprints"] = {"qlint/v1": diag.fingerprint}
        flow_locations = [
            {"location": _sarif_location(step.span, step.note, src_root=src_root)}
            for step in diag.flow
            if step.span.is_valid
        ]
        if flow_locations:
            result["codeFlows"] = [
                {"threadFlows": [{"locations": flow_locations}]}
            ]
        if diag.suppressed:
            result["suppressions"] = [{"kind": "inSource"}]
        results.append(result)

    run: dict = {
        "tool": {
            "driver": {
                "name": "qlint",
                "version": QLINT_VERSION,
                "informationUri": "https://example.invalid/qlint",
                "rules": rules,
            }
        },
        "results": results,
    }
    if src_root is not None:
        uri = Path(src_root).resolve().as_uri()
        run["originalUriBaseIds"] = {
            "SRCROOT": {"uri": uri if uri.endswith("/") else uri + "/"}
        }
    if unit_status:
        # Best-effort ingestion statuses, keyed by portable URI.  Absent
        # on strict runs (and on clean best-effort corpora) so those
        # SARIF logs stay byte-identical to the pre-ingestion tool's.
        run["properties"] = {
            "qlint/unitStatus": {
                _relative_uri(file, src_root)[0]: unit_status[file]
                for file in sorted(unit_status)
            }
        }
    log = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [run],
    }
    return json.dumps(log, indent=2) + "\n"


def render_diagnostics(
    diagnostics: Iterable[Diagnostic],
    format: str = "human",
    sources: Mapping[str, str] | None = None,
    show_suppressed: bool = False,
    src_root: str | None = None,
    unit_status: Mapping[str, str] | None = None,
) -> str:
    if format == "human":
        return render_human(diagnostics, sources, show_suppressed=show_suppressed)
    if format == "json":
        return render_json(diagnostics, unit_status=unit_status)
    if format == "sarif":
        return render_sarif(diagnostics, src_root=src_root, unit_status=unit_status)
    raise ValueError(f"unknown format {format!r} (expected human, json, or sarif)")


def render_report(
    report,
    format: str = "human",
    sources: Mapping[str, str] | None = None,
    show_suppressed: bool = False,
    src_root: str | None = None,
) -> str:
    """Render a :class:`~repro.checker.runner.CheckerReport` exactly the
    way the one-shot CLI prints it to stdout.

    This is the single rendering path shared by ``python -m
    repro.checker`` and the ``repro.serve`` daemon, so the two emit
    byte-identical reports for the same analysis: human and SARIF
    formats receive every diagnostic (SARIF marks suppressions
    in-band, the human renderer elides them itself), JSON elides
    suppressed findings unless ``show_suppressed``.

    For human output the flagged source lines are excerpted from
    ``sources``; when ``None``, the report's files are read from disk
    (the CLI behaviour).  A daemon passes its overlay-merged text.
    """
    if format == "human" and sources is None:
        sources = {}
        for file in report.files:
            try:
                sources[file] = Path(file).read_text(encoding="utf-8", errors="replace")
            except OSError:
                pass
    # Unit statuses appear only when ingestion actually degraded a unit,
    # so strict runs and clean best-effort corpora render byte-identically
    # to the pre-ingestion tool.
    statuses = getattr(report, "unit_status", None) or {}
    degraded = {f: s for f, s in statuses.items() if s != "ok"}
    return render_diagnostics(
        report.diagnostics
        if format == "human" or format == "sarif"
        else [d for d in report.diagnostics if show_suppressed or not d.suppressed],
        format=format,
        sources=sources,
        show_suppressed=show_suppressed,
        src_root=src_root,
        unit_status=degraded or None,
    )
