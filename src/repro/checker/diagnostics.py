"""Diagnostic model for qlint: spans, flow steps, fingerprints,
baselines, and suppression comments.

A :class:`Diagnostic` is the unit every renderer consumes.  Its
``fingerprint`` is *stable*: computed from the check id, the file, the
text of the flagged line (not its number), the message, and an
occurrence index — so reordering unrelated code or inserting lines
above a finding does not churn a checked-in baseline.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Mapping

from ..qual.constraints import Origin


@dataclass(frozen=True)
class Span:
    """A source location: file, 1-based line, 1-based column (0 = unknown)."""

    file: str = ""
    line: int = 0
    column: int = 0

    @property
    def is_valid(self) -> bool:
        return bool(self.file) and self.line > 0

    def __str__(self) -> str:
        if not self.file:
            return f"<unknown>:{self.line}" if self.line else "<unknown>"
        out = f"{self.file}:{self.line}"
        if self.column:
            out += f":{self.column}"
        return out

    @classmethod
    def from_origin(cls, origin: Origin) -> "Span":
        return cls(
            file=origin.filename or "",
            line=origin.line or 0,
            column=origin.column or 0,
        )


@dataclass(frozen=True)
class FlowStep:
    """One step of a qualifier-flow trace: what happened, and where."""

    note: str
    span: Span = Span()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a check violation at a primary span, with the
    qualifier-flow path that produced it."""

    check: str
    qualifier: str
    severity: str  # "error" | "warning" | "note"
    message: str
    span: Span
    flow: tuple[FlowStep, ...] = ()
    fingerprint: str = ""
    suppressed: bool = False

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "qualifier": self.qualifier,
            "severity": self.severity,
            "message": self.message,
            "file": self.span.file,
            "line": self.span.line,
            "column": self.span.column,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "flow": [
                {
                    "note": step.note,
                    "file": step.span.file,
                    "line": step.span.line,
                    "column": step.span.column,
                }
                for step in self.flow
            ],
        }


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def _line_text(sources: Mapping[str, str], span: Span) -> str:
    source = sources.get(span.file)
    if source is None or span.line <= 0:
        return ""
    lines = source.splitlines()
    if span.line > len(lines):
        return ""
    return lines[span.line - 1].strip()


def assign_fingerprints(
    diagnostics: Iterable[Diagnostic], sources: Mapping[str, str]
) -> list[Diagnostic]:
    """Return diagnostics with stable fingerprints filled in.

    The key hashes check | file | flagged-line-text | message; identical
    keys (e.g. two findings on textually identical lines) are
    disambiguated by occurrence order, which is deterministic because
    the runner reports diagnostics in file/check order.
    """
    occurrences: dict[str, int] = {}
    out: list[Diagnostic] = []
    for diag in diagnostics:
        base = "|".join(
            (diag.check, diag.span.file, _line_text(sources, diag.span), diag.message)
        )
        index = occurrences.get(base, 0)
        occurrences[base] = index + 1
        digest = hashlib.sha256(f"{base}|{index}".encode()).hexdigest()[:16]
        out.append(replace(diag, fingerprint=digest))
    return out


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------

#: ``/* qlint: allow(tainted) */`` or ``// qlint: allow(nonnull-deref)``;
#: several names may be listed, comma-separated.
_SUPPRESS_RE = re.compile(r"qlint:\s*allow\(\s*([A-Za-z0-9_,\s-]+?)\s*\)")


def suppression_lines(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the set of names allowed there."""
    out: dict[int, frozenset[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        names: set[str] = set()
        for match in _SUPPRESS_RE.finditer(text):
            names |= {part.strip() for part in match.group(1).split(",") if part.strip()}
        if names:
            out[number] = frozenset(names)
    return out


def apply_suppressions(
    diagnostics: Iterable[Diagnostic], sources: Mapping[str, str]
) -> list[Diagnostic]:
    """Mark suppressed any diagnostic whose primary line (or the line
    directly above it) carries ``qlint: allow(<name>)`` naming either
    the diagnostic's qualifier or its check id."""
    by_file: dict[str, dict[int, frozenset[str]]] = {}
    out: list[Diagnostic] = []
    for diag in diagnostics:
        allows = by_file.get(diag.span.file)
        if allows is None:
            allows = suppression_lines(sources.get(diag.span.file, ""))
            by_file[diag.span.file] = allows
        names = allows.get(diag.span.line, frozenset()) | allows.get(
            diag.span.line - 1, frozenset()
        )
        if diag.qualifier in names or diag.check in names:
            diag = replace(diag, suppressed=True)
        out.append(diag)
    return out


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


@dataclass
class Baseline:
    """A checked-in set of known-finding fingerprints.

    ``compare`` reports drift in both directions: *new* findings (absent
    from the baseline) and *lost* ones (baselined but no longer
    reported) — CI asserts both are empty.
    """

    fingerprints: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(set(data.get("fingerprints", [])))

    def save(self, path: str | Path) -> None:
        payload = {"version": 1, "fingerprints": sorted(self.fingerprints)}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        return cls({d.fingerprint for d in diagnostics if not d.suppressed})

    def compare(
        self, diagnostics: Iterable[Diagnostic]
    ) -> tuple[list[Diagnostic], set[str]]:
        """(new diagnostics, fingerprints of lost findings)."""
        current = [d for d in diagnostics if not d.suppressed]
        new = [d for d in current if d.fingerprint not in self.fingerprints]
        lost = self.fingerprints - {d.fingerprint for d in current}
        return new, lost
