"""The qlint batch runner: walk a tree of ``.c`` files, check each
translation unit, and assemble one report.

Per-file results are memoised in the same content-addressed store the
inference pipeline uses (:mod:`repro.constinfer.cache`): the key covers
the file's text, the enabled check set, and a fingerprint of the
analyser's own code (the ``checker`` package included), so a warm run
deserialises finished diagnostics and skips parse, constraint
generation, and solve entirely.

Fingerprints and suppressions are applied in the worker — it holds the
source text — while baseline comparison happens once in the
coordinator.  With ``jobs > 1`` files are distributed over a process
pool; results are ordered by sorted path either way, so the report is
deterministic at any job count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from ..constinfer.cache import AnalysisCache
from .checks import DEFAULT_CHECKS, QualifierCheck, check_by_name, config_digest
from .diagnostics import (
    Baseline,
    Diagnostic,
    apply_suppressions,
    assign_fingerprints,
)

#: Cache entry kind for finished per-file diagnostic lists.
CACHE_KIND = "qlint-diagnostics"

#: Cache entry kind for finished whole-program diagnostic lists.
WHOLE_CACHE_KIND = "qlint-whole"


@dataclass
class CheckerReport:
    """Everything one batch run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files: list[str] = field(default_factory=list)
    #: file -> error string for units that failed to parse/analyse.
    errors: dict[str, str] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Findings not in the baseline / baselined fingerprints no longer
    #: reported (both empty when no baseline was given).
    new_findings: list[Diagnostic] = field(default_factory=list)
    lost_fingerprints: set[str] = field(default_factory=set)
    #: Best-effort runs only: file -> "ok" | "partial" | "skipped".
    #: ``partial`` units were analysed on their recovered declaration
    #: subset; ``skipped`` units contributed nothing but their parse
    #: diagnostics.  Strict runs leave this empty.
    unit_status: dict[str, str] = field(default_factory=dict)
    #: Best-effort runs only: file -> number of function definitions
    #: that were actually analysed (the recovered-function numerator).
    functions: dict[str, int] = field(default_factory=dict)

    @property
    def active(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.suppressed]

    @property
    def exit_code(self) -> int:
        """1 when unsuppressed errors (or baseline drift) remain."""
        if self.errors or self.new_findings or self.lost_fingerprints:
            return 1
        return 1 if any(d.severity == "error" for d in self.active) else 0

    def summary(self) -> str:
        active = self.active
        suppressed = len(self.diagnostics) - len(active)
        parts = [
            f"{len(self.files)} file(s)",
            f"{len(active)} finding(s)",
            f"{suppressed} suppressed",
        ]
        if self.errors:
            parts.append(f"{len(self.errors)} error(s)")
        partial = sum(1 for s in self.unit_status.values() if s == "partial")
        skipped = sum(1 for s in self.unit_status.values() if s == "skipped")
        if partial or skipped:
            parts.append(f"{partial} partial / {skipped} skipped unit(s)")
        if self.cache_hits or self.cache_misses:
            parts.append(f"cache {self.cache_hits} hit(s) / {self.cache_misses} miss(es)")
        return ", ".join(parts)


def discover_files(
    paths: Iterable[str | Path], extra: Iterable[str] = ()
) -> list[Path]:
    """Explicit files plus every ``*.c`` under directories, sorted.

    ``extra`` names files that exist only as in-memory overlay text (an
    editor buffer not yet saved): any of them lying under a listed
    directory joins the set even though the filesystem has no entry.
    """
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.c"))
            for name in extra:
                candidate = Path(name)
                if candidate.suffix == ".c" and candidate.is_relative_to(path):
                    out.add(candidate)
        else:
            out.add(path)
    return sorted(out)


def _cache_options(
    check_names: tuple[str, ...],
    best_effort: bool = False,
    include_paths: tuple[str, ...] = (),
) -> dict:
    """The cache-key options for one run's check configuration: the
    enabled names *and* a digest of their full rule sets, so editing a
    check's sources/sinks invalidates cached diagnostics.  Best-effort
    runs key separately (their payloads carry status/function counts,
    and the include path list changes what an ``#include`` resolves to).
    """
    options = {
        "checks": ",".join(check_names),
        "config": config_digest(check_names),
    }
    if best_effort:
        options["ingest"] = "best-effort"
        options["include_paths"] = "\x00".join(include_paths)
    return options


def check_one_source(
    source: str,
    path_text: str,
    check_names: tuple[str, ...],
    cache: AnalysisCache | None,
    best_effort: bool = False,
    include_paths: tuple[str, ...] = (),
) -> tuple[list[Diagnostic], str | None, bool, str, int]:
    """Check one unit's text: the shared per-file core of the batch
    runner and the ``repro.serve`` daemon.  Returns (diagnostics —
    fingerprinted and suppression-marked, error, from_cache, status,
    analysed-function count).

    Strict mode (the default) raises nothing but reports a parse/sema
    failure as ``error`` with no diagnostics — the seed behaviour.
    Best-effort mode never reports ``error`` for bad *content*: the
    front end recovers what it can, problems come back as parse-error/
    preprocessor diagnostics, and ``status`` says how much of the unit
    survived (``ok`` / ``partial`` / ``skipped``).
    """
    from .engine import check_source, check_source_resilient  # deferred: keep worker import light

    key = None
    if cache is not None:
        key = cache.key(
            CACHE_KIND,
            source=source,
            options=_cache_options(check_names, best_effort, include_paths),
        )
        cached = cache.get(key)
        if not best_effort and isinstance(cached, list):
            return cached, None, True, "ok", 0
        if best_effort and isinstance(cached, dict):
            return (
                list(cached.get("diagnostics", [])),
                None,
                True,
                str(cached.get("status", "ok")),
                int(cached.get("functions", 0)),
            )

    checks = tuple(check_by_name(name) for name in check_names)
    status = "ok"
    functions = 0
    if best_effort:
        diagnostics, status, functions = check_source_resilient(
            source, filename=path_text, checks=checks, include_paths=include_paths
        )
    else:
        try:
            diagnostics = check_source(source, filename=path_text, checks=checks)
        except Exception as exc:  # a bad input file must not kill the batch
            return [], f"{type(exc).__name__}: {exc}", False, "skipped", 0

    sources = {path_text: source}
    diagnostics = assign_fingerprints(diagnostics, sources)
    diagnostics = apply_suppressions(diagnostics, sources)
    if cache is not None and key is not None:
        if best_effort:
            cache.put(
                key,
                {
                    "diagnostics": diagnostics,
                    "status": status,
                    "functions": functions,
                },
            )
        else:
            cache.put(key, diagnostics)
    return diagnostics, None, False, status, functions


def _check_one(
    path_text: str,
    check_names: tuple[str, ...],
    cache_dir: str | None,
    best_effort: bool = False,
    include_paths: tuple[str, ...] = (),
) -> tuple[str, list[Diagnostic], str | None, bool, str, int]:
    """Worker: check one file from disk.  Top-level so it pickles into a
    process pool."""
    try:
        source = Path(path_text).read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        return path_text, [], str(exc), False, "skipped", 0
    cache = AnalysisCache(cache_dir) if cache_dir else None
    diagnostics, error, from_cache, status, functions = check_one_source(
        source, path_text, check_names, cache, best_effort, include_paths
    )
    return path_text, diagnostics, error, from_cache, status, functions


def check_paths(
    paths: Sequence[str | Path],
    checks: Sequence[QualifierCheck | str] = DEFAULT_CHECKS,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    baseline: Baseline | None = None,
    sources: Mapping[str, str] | None = None,
    cache: AnalysisCache | None = None,
    best_effort: bool = False,
    include_paths: Sequence[str] = (),
) -> CheckerReport:
    """Check every ``.c`` file reachable from ``paths``.

    ``sources`` overlays in-memory text over the filesystem (the daemon's
    unsaved editor buffers): a file whose path appears there is checked
    from that text without touching disk.  ``cache`` lends an existing
    :class:`AnalysisCache` handle — its in-memory tier then persists
    across calls — and takes precedence over ``cache_dir``; both the
    overlay and a shared handle imply the serial path (the handle's
    memory tier cannot span processes).

    ``best_effort`` turns on resilient ingestion: the preprocessor runs
    (``include_paths`` searched for ``#include``), parse errors recover
    instead of failing the file, and the report carries per-unit
    ``unit_status`` / analysed-function counts.
    """
    check_names = tuple(
        c if isinstance(c, str) else c.name for c in checks
    )
    for name in check_names:
        check_by_name(name)  # fail fast on typos
    files = discover_files(paths, extra=sources or ())
    cache_text = str(cache_dir) if cache_dir is not None else None
    include_tuple = tuple(str(p) for p in include_paths)

    report = CheckerReport(files=[str(f) for f in files])
    if jobs > 1 and len(files) > 1 and sources is None and cache is None:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(
                pool.map(
                    _check_one,
                    [str(f) for f in files],
                    [check_names] * len(files),
                    [cache_text] * len(files),
                    [best_effort] * len(files),
                    [include_tuple] * len(files),
                )
            )
    else:
        if cache is None and cache_text is not None:
            cache = AnalysisCache(cache_text)
        results = []
        for file in files:
            path_text = str(file)
            overlay = sources.get(path_text) if sources is not None else None
            if overlay is None:
                try:
                    source = file.read_text(encoding="utf-8", errors="replace")
                except OSError as exc:
                    results.append((path_text, [], str(exc), False, "skipped", 0))
                    continue
            else:
                source = overlay
            diagnostics, error, from_cache, status, functions = check_one_source(
                source, path_text, check_names, cache, best_effort, include_tuple
            )
            results.append(
                (path_text, diagnostics, error, from_cache, status, functions)
            )

    for path_text, diagnostics, error, from_cache, status, functions in results:
        if error is not None:
            report.errors[path_text] = error
        report.diagnostics.extend(diagnostics)
        if best_effort:
            report.unit_status[path_text] = status
            report.functions[path_text] = functions
        if from_cache:
            report.cache_hits += 1
        else:
            report.cache_misses += 1

    if baseline is not None:
        report.new_findings, report.lost_fingerprints = baseline.compare(
            report.diagnostics
        )
    return report


def analyze(
    paths: Sequence[str | Path],
    *,
    checks: Sequence[QualifierCheck | str] = DEFAULT_CHECKS,
    whole_program: bool = False,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    baseline: Baseline | None = None,
    sources: Mapping[str, str] | None = None,
    cache: AnalysisCache | None = None,
    parse_unit: Callable[[str, str], object] | None = None,
    best_effort: bool = False,
    include_paths: Sequence[str] = (),
) -> CheckerReport:
    """The one-shot analysis entry point: per-file batch or linked
    whole-program, selected by ``whole_program``.

    Both the CLI (``python -m repro.checker``) and the resident daemon
    (``python -m repro.serve``) call exactly this function, so for the
    same inputs they produce the same :class:`CheckerReport` — and, via
    :func:`repro.checker.render.render_report`, byte-identical output.

    ``best_effort`` selects resilient ingestion (preprocessing, parser
    recovery, partial analysis) in either mode.
    """
    if whole_program:
        return check_whole_program(
            paths,
            checks=checks,
            jobs=jobs,
            cache_dir=cache_dir,
            baseline=baseline,
            sources=sources,
            cache=cache,
            parse_unit=parse_unit,
            best_effort=best_effort,
            include_paths=include_paths,
        )
    return check_paths(
        paths,
        checks=checks,
        jobs=jobs,
        cache_dir=cache_dir,
        baseline=baseline,
        sources=sources,
        cache=cache,
        best_effort=best_effort,
        include_paths=include_paths,
    )


def _parse_one_unit(name_text: tuple[str, str]):
    """Worker: parse one named source to its translation unit.  Returns
    (name, unit-or-None, error).  Top-level so it pickles into a pool."""
    from ..cfront.cparser import parse_c

    name, text = name_text
    try:
        return name, parse_c(text, name), None
    except Exception as exc:
        return name, None, f"{type(exc).__name__}: {exc}"


def _parse_one_unit_resilient(name_text_paths: tuple[str, str, tuple[str, ...]]):
    """Worker: resilient parse of one named source.  Returns (name,
    ParseResult-or-None, error).  Top-level so it pickles into a pool."""
    from ..cfront.cparser import parse_c_resilient

    name, text, include_paths = name_text_paths
    try:
        return name, parse_c_resilient(text, name, include_paths=include_paths), None
    except Exception as exc:  # recovery itself must never kill the batch
        return name, None, f"{type(exc).__name__}: {exc}"


def check_whole_program(
    paths: Sequence[str | Path],
    checks: Sequence[QualifierCheck | str] = DEFAULT_CHECKS,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    baseline: Baseline | None = None,
    sources: Mapping[str, str] | None = None,
    cache: AnalysisCache | None = None,
    parse_unit: Callable[[str, str], object] | None = None,
    best_effort: bool = False,
    include_paths: Sequence[str] = (),
) -> CheckerReport:
    """Link every ``.c`` file reachable from ``paths`` into one program
    and check it whole, so qualifier flows through ``extern`` symbols
    and cross-TU calls are visible and flow paths may span files.

    ``jobs`` parallelises the per-TU parse; linking and checking run
    once over the merged program, and diagnostics are deterministic at
    any job count.  A file that fails to parse is reported under
    ``errors`` and linked around (best-effort, like a real linker).
    Results are memoised whole: the cache key covers every unit's name
    and text, the enabled check set, and the analyser code fingerprint.

    The daemon hooks: ``sources`` overlays in-memory unit text over the
    filesystem, ``cache`` lends a long-lived handle (memory tier and
    all), and ``parse_unit`` — a ``(name, text) -> TranslationUnit``
    callable (or ``-> ParseResult`` under ``best_effort``) — replaces
    the stock parser so a resident parse memo can serve unchanged
    units; any of the three implies the serial path.

    With ``best_effort`` every unit parses resiliently: partial units
    link with whatever declarations they kept, wholly unusable units
    are linked around with status ``skipped``, and front-end findings
    join the linked program's diagnostics.
    """
    from .engine import (
        _sort_key,
        _unit_status,
        check_linked_program,
        parse_findings,
    )
    from ..cfront.cast import FuncDef, TranslationUnit
    from ..cfront.cparser import ParseResult
    from ..whole.linker import link_units

    check_names = tuple(c if isinstance(c, str) else c.name for c in checks)
    for name in check_names:
        check_by_name(name)  # fail fast on typos
    include_tuple = tuple(str(p) for p in include_paths)
    overlay = sources
    files = discover_files(paths, extra=overlay or ())

    report = CheckerReport(files=[str(f) for f in files])
    sources = {}
    for path in files:
        text = overlay.get(str(path)) if overlay is not None else None
        if text is not None:
            sources[str(path)] = text
            continue
        try:
            sources[str(path)] = path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            report.errors[str(path)] = str(exc)
            if best_effort:
                report.unit_status[str(path)] = "skipped"
                report.functions[str(path)] = 0

    if cache is None and cache_dir is not None:
        cache = AnalysisCache(cache_dir)
    key = None
    if cache is not None:
        combined = "\x00".join(
            f"{name}\x01{sources[name]}" for name in sorted(sources)
        )
        key = cache.key(
            WHOLE_CACHE_KIND,
            source=combined,
            mode="whole",
            options=_cache_options(check_names, best_effort, include_tuple),
        )
        cached = cache.get(key)
        hit = (
            isinstance(cached, dict)
            if best_effort
            else isinstance(cached, list)
        )
        if hit:
            if best_effort:
                report.diagnostics = list(cached.get("diagnostics", []))
                report.unit_status.update(cached.get("unit_status", {}))
                report.functions.update(cached.get("functions", {}))
            else:
                report.diagnostics = list(cached)
            report.cache_hits = 1
            if baseline is not None:
                report.new_findings, report.lost_fingerprints = baseline.compare(
                    report.diagnostics
                )
            return report

    items = sorted(sources.items())
    if parse_unit is not None:
        parsed = []
        for name, text in items:
            try:
                parsed.append((name, parse_unit(name, text), None))
            except Exception as exc:
                parsed.append((name, None, f"{type(exc).__name__}: {exc}"))
    elif best_effort and jobs > 1 and len(items) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            parsed = list(
                pool.map(
                    _parse_one_unit_resilient,
                    [(name, text, include_tuple) for name, text in items],
                )
            )
    elif best_effort:
        parsed = [
            _parse_one_unit_resilient((name, text, include_tuple))
            for name, text in items
        ]
    elif jobs > 1 and len(items) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            parsed = list(pool.map(_parse_one_unit, items))
    else:
        parsed = [_parse_one_unit(item) for item in items]

    units = []
    front_findings: list[Diagnostic] = []
    for name, unit, error in parsed:
        if error is not None:
            report.errors[name] = error
            if best_effort:
                report.unit_status[name] = "skipped"
                report.functions[name] = 0
            continue
        if isinstance(unit, ParseResult):
            # Resilient parse (best-effort worker or the daemon memo):
            # keep the salvaged unit, surface its front-end findings.
            front_findings.extend(parse_findings(unit.diagnostics))
            if best_effort:
                report.unit_status[name] = _unit_status(unit)
                report.functions[name] = sum(
                    1 for item in unit.unit.items if isinstance(item, FuncDef)
                )
            unit = unit.unit
        elif best_effort and isinstance(unit, TranslationUnit):
            report.unit_status[name] = "ok"
            report.functions[name] = sum(
                1 for item in unit.items if isinstance(item, FuncDef)
            )
        if unit is not None:
            units.append(unit)

    try:
        linked = link_units(units, sources=sources)
        diagnostics = check_linked_program(
            linked,
            tuple(check_by_name(name) for name in check_names),
            cache=cache,
        )
    except Exception as exc:
        report.errors["<whole-program>"] = f"{type(exc).__name__}: {exc}"
        report.cache_misses = 1
        return report

    if front_findings:
        diagnostics = sorted(diagnostics + front_findings, key=_sort_key)
    diagnostics = assign_fingerprints(diagnostics, sources)
    diagnostics = apply_suppressions(diagnostics, sources)
    report.diagnostics = diagnostics
    report.cache_misses = 1
    if cache is not None and key is not None:
        if best_effort:
            cache.put(
                key,
                {
                    "diagnostics": diagnostics,
                    "unit_status": dict(report.unit_status),
                    "functions": dict(report.functions),
                },
            )
        else:
            cache.put(key, diagnostics)

    if baseline is not None:
        report.new_findings, report.lost_fingerprints = baseline.compare(
            report.diagnostics
        )
    return report
