"""The qlint batch runner: walk a tree of ``.c`` files, check each
translation unit, and assemble one report.

Per-file results are memoised in the same content-addressed store the
inference pipeline uses (:mod:`repro.constinfer.cache`): the key covers
the file's text, the enabled check set, and a fingerprint of the
analyser's own code (the ``checker`` package included), so a warm run
deserialises finished diagnostics and skips parse, constraint
generation, and solve entirely.

Fingerprints and suppressions are applied in the worker — it holds the
source text — while baseline comparison happens once in the
coordinator.  With ``jobs > 1`` files are distributed over a process
pool; results are ordered by sorted path either way, so the report is
deterministic at any job count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from ..constinfer.cache import AnalysisCache
from .checks import DEFAULT_CHECKS, QualifierCheck, check_by_name, config_digest
from .diagnostics import (
    Baseline,
    Diagnostic,
    apply_suppressions,
    assign_fingerprints,
)

#: Cache entry kind for finished per-file diagnostic lists.
CACHE_KIND = "qlint-diagnostics"

#: Cache entry kind for finished whole-program diagnostic lists.
WHOLE_CACHE_KIND = "qlint-whole"


@dataclass
class CheckerReport:
    """Everything one batch run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files: list[str] = field(default_factory=list)
    #: file -> error string for units that failed to parse/analyse.
    errors: dict[str, str] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Findings not in the baseline / baselined fingerprints no longer
    #: reported (both empty when no baseline was given).
    new_findings: list[Diagnostic] = field(default_factory=list)
    lost_fingerprints: set[str] = field(default_factory=set)

    @property
    def active(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.suppressed]

    @property
    def exit_code(self) -> int:
        """1 when unsuppressed errors (or baseline drift) remain."""
        if self.errors or self.new_findings or self.lost_fingerprints:
            return 1
        return 1 if any(d.severity == "error" for d in self.active) else 0

    def summary(self) -> str:
        active = self.active
        suppressed = len(self.diagnostics) - len(active)
        parts = [
            f"{len(self.files)} file(s)",
            f"{len(active)} finding(s)",
            f"{suppressed} suppressed",
        ]
        if self.errors:
            parts.append(f"{len(self.errors)} error(s)")
        if self.cache_hits or self.cache_misses:
            parts.append(f"cache {self.cache_hits} hit(s) / {self.cache_misses} miss(es)")
        return ", ".join(parts)


def discover_files(
    paths: Iterable[str | Path], extra: Iterable[str] = ()
) -> list[Path]:
    """Explicit files plus every ``*.c`` under directories, sorted.

    ``extra`` names files that exist only as in-memory overlay text (an
    editor buffer not yet saved): any of them lying under a listed
    directory joins the set even though the filesystem has no entry.
    """
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.c"))
            for name in extra:
                candidate = Path(name)
                if candidate.suffix == ".c" and candidate.is_relative_to(path):
                    out.add(candidate)
        else:
            out.add(path)
    return sorted(out)


def _cache_options(check_names: tuple[str, ...]) -> dict:
    """The cache-key options for one run's check configuration: the
    enabled names *and* a digest of their full rule sets, so editing a
    check's sources/sinks invalidates cached diagnostics."""
    return {
        "checks": ",".join(check_names),
        "config": config_digest(check_names),
    }


def check_one_source(
    source: str,
    path_text: str,
    check_names: tuple[str, ...],
    cache: AnalysisCache | None,
) -> tuple[list[Diagnostic], str | None, bool]:
    """Check one unit's text: the shared per-file core of the batch
    runner and the ``repro.serve`` daemon.  Returns (diagnostics —
    fingerprinted and suppression-marked, error, from_cache)."""
    from .engine import check_source  # deferred: keep worker import light

    key = None
    if cache is not None:
        key = cache.key(CACHE_KIND, source=source, options=_cache_options(check_names))
        cached = cache.get(key)
        if isinstance(cached, list):
            return cached, None, True

    checks = tuple(check_by_name(name) for name in check_names)
    try:
        diagnostics = check_source(source, filename=path_text, checks=checks)
    except Exception as exc:  # a bad input file must not kill the batch
        return [], f"{type(exc).__name__}: {exc}", False

    sources = {path_text: source}
    diagnostics = assign_fingerprints(diagnostics, sources)
    diagnostics = apply_suppressions(diagnostics, sources)
    if cache is not None and key is not None:
        cache.put(key, diagnostics)
    return diagnostics, None, False


def _check_one(
    path_text: str, check_names: tuple[str, ...], cache_dir: str | None
) -> tuple[str, list[Diagnostic], str | None, bool]:
    """Worker: check one file from disk.  Top-level so it pickles into a
    process pool."""
    try:
        source = Path(path_text).read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        return path_text, [], str(exc), False
    cache = AnalysisCache(cache_dir) if cache_dir else None
    diagnostics, error, from_cache = check_one_source(
        source, path_text, check_names, cache
    )
    return path_text, diagnostics, error, from_cache


def check_paths(
    paths: Sequence[str | Path],
    checks: Sequence[QualifierCheck | str] = DEFAULT_CHECKS,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    baseline: Baseline | None = None,
    sources: Mapping[str, str] | None = None,
    cache: AnalysisCache | None = None,
) -> CheckerReport:
    """Check every ``.c`` file reachable from ``paths``.

    ``sources`` overlays in-memory text over the filesystem (the daemon's
    unsaved editor buffers): a file whose path appears there is checked
    from that text without touching disk.  ``cache`` lends an existing
    :class:`AnalysisCache` handle — its in-memory tier then persists
    across calls — and takes precedence over ``cache_dir``; both the
    overlay and a shared handle imply the serial path (the handle's
    memory tier cannot span processes).
    """
    check_names = tuple(
        c if isinstance(c, str) else c.name for c in checks
    )
    for name in check_names:
        check_by_name(name)  # fail fast on typos
    files = discover_files(paths, extra=sources or ())
    cache_text = str(cache_dir) if cache_dir is not None else None

    report = CheckerReport(files=[str(f) for f in files])
    if jobs > 1 and len(files) > 1 and sources is None and cache is None:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(
                pool.map(
                    _check_one,
                    [str(f) for f in files],
                    [check_names] * len(files),
                    [cache_text] * len(files),
                )
            )
    else:
        if cache is None and cache_text is not None:
            cache = AnalysisCache(cache_text)
        results = []
        for file in files:
            path_text = str(file)
            overlay = sources.get(path_text) if sources is not None else None
            if overlay is None:
                try:
                    source = file.read_text(encoding="utf-8", errors="replace")
                except OSError as exc:
                    results.append((path_text, [], str(exc), False))
                    continue
            else:
                source = overlay
            diagnostics, error, from_cache = check_one_source(
                source, path_text, check_names, cache
            )
            results.append((path_text, diagnostics, error, from_cache))

    for path_text, diagnostics, error, from_cache in results:
        if error is not None:
            report.errors[path_text] = error
        report.diagnostics.extend(diagnostics)
        if from_cache:
            report.cache_hits += 1
        else:
            report.cache_misses += 1

    if baseline is not None:
        report.new_findings, report.lost_fingerprints = baseline.compare(
            report.diagnostics
        )
    return report


def analyze(
    paths: Sequence[str | Path],
    *,
    checks: Sequence[QualifierCheck | str] = DEFAULT_CHECKS,
    whole_program: bool = False,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    baseline: Baseline | None = None,
    sources: Mapping[str, str] | None = None,
    cache: AnalysisCache | None = None,
    parse_unit: Callable[[str, str], object] | None = None,
) -> CheckerReport:
    """The one-shot analysis entry point: per-file batch or linked
    whole-program, selected by ``whole_program``.

    Both the CLI (``python -m repro.checker``) and the resident daemon
    (``python -m repro.serve``) call exactly this function, so for the
    same inputs they produce the same :class:`CheckerReport` — and, via
    :func:`repro.checker.render.render_report`, byte-identical output.
    """
    if whole_program:
        return check_whole_program(
            paths,
            checks=checks,
            jobs=jobs,
            cache_dir=cache_dir,
            baseline=baseline,
            sources=sources,
            cache=cache,
            parse_unit=parse_unit,
        )
    return check_paths(
        paths,
        checks=checks,
        jobs=jobs,
        cache_dir=cache_dir,
        baseline=baseline,
        sources=sources,
        cache=cache,
    )


def _parse_one_unit(name_text: tuple[str, str]):
    """Worker: parse one named source to its translation unit.  Returns
    (name, unit-or-None, error).  Top-level so it pickles into a pool."""
    from ..cfront.cparser import parse_c

    name, text = name_text
    try:
        return name, parse_c(text, name), None
    except Exception as exc:
        return name, None, f"{type(exc).__name__}: {exc}"


def check_whole_program(
    paths: Sequence[str | Path],
    checks: Sequence[QualifierCheck | str] = DEFAULT_CHECKS,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    baseline: Baseline | None = None,
    sources: Mapping[str, str] | None = None,
    cache: AnalysisCache | None = None,
    parse_unit: Callable[[str, str], object] | None = None,
) -> CheckerReport:
    """Link every ``.c`` file reachable from ``paths`` into one program
    and check it whole, so qualifier flows through ``extern`` symbols
    and cross-TU calls are visible and flow paths may span files.

    ``jobs`` parallelises the per-TU parse; linking and checking run
    once over the merged program, and diagnostics are deterministic at
    any job count.  A file that fails to parse is reported under
    ``errors`` and linked around (best-effort, like a real linker).
    Results are memoised whole: the cache key covers every unit's name
    and text, the enabled check set, and the analyser code fingerprint.

    The daemon hooks: ``sources`` overlays in-memory unit text over the
    filesystem, ``cache`` lends a long-lived handle (memory tier and
    all), and ``parse_unit`` — a ``(name, text) -> TranslationUnit``
    callable — replaces the stock parser so a resident parse memo can
    serve unchanged units; any of the three implies the serial path.
    """
    from .engine import check_linked_program
    from ..whole.linker import link_units

    check_names = tuple(c if isinstance(c, str) else c.name for c in checks)
    for name in check_names:
        check_by_name(name)  # fail fast on typos
    overlay = sources
    files = discover_files(paths, extra=overlay or ())

    report = CheckerReport(files=[str(f) for f in files])
    sources = {}
    for path in files:
        text = overlay.get(str(path)) if overlay is not None else None
        if text is not None:
            sources[str(path)] = text
            continue
        try:
            sources[str(path)] = path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            report.errors[str(path)] = str(exc)

    if cache is None and cache_dir is not None:
        cache = AnalysisCache(cache_dir)
    key = None
    if cache is not None:
        combined = "\x00".join(
            f"{name}\x01{sources[name]}" for name in sorted(sources)
        )
        key = cache.key(
            WHOLE_CACHE_KIND,
            source=combined,
            mode="whole",
            options=_cache_options(check_names),
        )
        cached = cache.get(key)
        if isinstance(cached, list):
            report.diagnostics = list(cached)
            report.cache_hits = 1
            if baseline is not None:
                report.new_findings, report.lost_fingerprints = baseline.compare(
                    report.diagnostics
                )
            return report

    items = sorted(sources.items())
    if parse_unit is not None:
        parsed = []
        for name, text in items:
            try:
                parsed.append((name, parse_unit(name, text), None))
            except Exception as exc:
                parsed.append((name, None, f"{type(exc).__name__}: {exc}"))
    elif jobs > 1 and len(items) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            parsed = list(pool.map(_parse_one_unit, items))
    else:
        parsed = [_parse_one_unit(item) for item in items]

    units = []
    for name, unit, error in parsed:
        if error is not None:
            report.errors[name] = error
        elif unit is not None:
            units.append(unit)

    try:
        linked = link_units(units, sources=sources)
        diagnostics = check_linked_program(
            linked, tuple(check_by_name(name) for name in check_names)
        )
    except Exception as exc:
        report.errors["<whole-program>"] = f"{type(exc).__name__}: {exc}"
        report.cache_misses = 1
        return report

    diagnostics = assign_fingerprints(diagnostics, sources)
    diagnostics = apply_suppressions(diagnostics, sources)
    report.diagnostics = diagnostics
    report.cache_misses = 1
    if cache is not None and key is not None:
        cache.put(key, diagnostics)

    if baseline is not None:
        report.new_findings, report.lost_fingerprints = baseline.compare(
            report.diagnostics
        )
    return report
