"""qlint — a batch qualifier checker over C translation units and
lambda programs (the paper's Section 5 applications as a working tool).

The subsystem layers on the inference pipeline:

* :mod:`repro.checker.diagnostics` — spans, flow steps, diagnostics,
  stable fingerprints, baselines, and suppression comments;
* :mod:`repro.checker.checks` — the pluggable check registry
  (tainted-format, casts-away-const, nonnull-deref, binding-time);
* :mod:`repro.checker.engine` — the C checker inference (seed rules,
  sink obligations, shortest flow paths) and the lambda adapter;
* :mod:`repro.checker.render` — human, JSON, and SARIF 2.1.0 output;
* :mod:`repro.checker.runner` — the batch driver (``--jobs``, the
  content-addressed cache, baseline filtering);
* ``python -m repro.checker`` — the CLI.
"""

from .checks import (
    ALL_CHECKS,
    DEFAULT_CHECKS,
    QualifierCheck,
    SinkRule,
    SourceRule,
    check_by_name,
)
from .diagnostics import (
    Baseline,
    Diagnostic,
    FlowStep,
    Span,
    apply_suppressions,
    assign_fingerprints,
)
from .engine import (
    check_lambda_source,
    check_linked_program,
    check_program,
    check_source,
)
from .render import (
    render_diagnostics,
    render_human,
    render_json,
    render_report,
    render_sarif,
)
from .runner import CheckerReport, analyze, check_paths, check_whole_program

__all__ = [
    "ALL_CHECKS",
    "DEFAULT_CHECKS",
    "Baseline",
    "CheckerReport",
    "Diagnostic",
    "FlowStep",
    "QualifierCheck",
    "SinkRule",
    "SourceRule",
    "Span",
    "analyze",
    "apply_suppressions",
    "assign_fingerprints",
    "check_by_name",
    "check_lambda_source",
    "check_linked_program",
    "check_paths",
    "check_program",
    "check_source",
    "check_whole_program",
    "render_diagnostics",
    "render_human",
    "render_json",
    "render_report",
    "render_sarif",
]
