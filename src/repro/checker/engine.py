"""The qlint checking engine.

One inference run per translation unit serves every enabled check: the
combined product lattice has one coordinate per check qualifier, and in
a product of two-point lattices the coordinates never interact, so
seeding ``tainted`` cannot disturb the ``nonnull`` solution and vice
versa.

The run mirrors the monomorphic engine
(:func:`repro.constinfer.engine.run_mono`) with three additions:

* **seeds** — after constraint generation, each check's source rules
  emit constant lower bounds on the relevant library-signature
  qualifiers (``tainted <= kappa`` on ``getenv``'s result levels,
  ``bottom - nonnull <= kappa`` on ``malloc``'s);
* **sink obligations** — the sink rules are *not* emitted as
  constraints.  They are checked against the least solution after the
  solve, so an insecure program still solves and every violation is
  reported (emitting them would make the first violation abort the run
  as unsatisfiable);
* **flow paths** — each violated obligation is explained by
  :func:`repro.qual.solver.shortest_flow_path`, a provably minimal
  seed-to-sink witness whose steps carry the provenance spans threaded
  through constraint generation.

The ``const`` coordinate is different: write-through-const conflicts
are *equality-style* (lower meets upper) and surface as
:class:`~repro.qual.solver.UnsatisfiableError` during the solve.  The
engine converts that error into a ``const-violation`` diagnostic and
skips the remaining bound checks for the unit (degraded mode — the
least solution does not exist).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfront import cast as ast
from ..cfront.cast import CastClass, classify_cast
from ..cfront.ctypes import (
    CArray,
    CBase,
    CFunc,
    CPointer,
    CStruct,
    CType,
    format_ctype,
)
from ..cfront.sema import Program
from ..constinfer.analysis import ConstInference
from ..constinfer.engine import _create_shared_cells
from ..qual.constraints import Origin, QualConstraint
from ..qual.lattice import LatticeElement
from ..qual.qtypes import QType, Qual, QualVar, quals_of
from ..qual.solver import UnsatisfiableError, shortest_flow_path, solve
from .checks import DEFAULT_CHECKS, QualifierCheck, lattice_for
from .diagnostics import Diagnostic, FlowStep, Span


class CheckerInference(ConstInference):
    """Constraint generation plus checker bookkeeping: every dereference
    site is recorded so nonnull-style checks can turn each one into a
    sink obligation."""

    def __init__(self, program: Program, lattice, **options):
        super().__init__(program, lattice, **options)
        self.deref_sites: list[tuple[Qual, Span]] = []

    def note_deref(self, value: QType, e: ast.CExpr) -> None:
        span = Span(self._current_file, e.line, e.col)
        self.deref_sites.append((value.qual, span))

    def scalar_result(self, operands: tuple[QType, ...], e: ast.CExpr) -> QType:
        """Value qualifiers (tainted, dynamic) survive arithmetic: each
        operand's top-level qualifier flows into the result."""
        result = self.fresh_scalar()
        origin = self.origin("result of arithmetic", e.line, e.col)
        for operand in operands:
            self.emit(operand.qual, result.qual, origin)
        return result


@dataclass(frozen=True)
class _Obligation:
    """One post-solve bound check: ``least(qual) <= bound`` must hold."""

    check: QualifierCheck
    qual: Qual
    bound: LatticeElement
    #: Fallback primary span (sink declaration or deref site); a valid
    #: flow-path step span takes precedence.
    span: Span
    message: str
    #: Dedup key — one diagnostic per sink rule / deref site even when a
    #: sink cell exposes several qualifier positions.
    site: tuple
    #: Extra final flow step pinning the sink itself (deref obligations:
    #: the dereference site, which also becomes the primary span).
    sink_step: FlowStep | None = None


def _decl_span(program: Program, name: str) -> tuple[int, int, str]:
    decl = program.functions.get(name) or program.prototypes.get(name)
    if decl is None:
        return 0, 0, ""
    return decl.line, decl.col, decl.file


def _seed_checks(
    inference: CheckerInference, checks: tuple[QualifierCheck, ...]
) -> dict[Origin, str]:
    """Emit every source rule's constant lower bounds.  Returns the map
    from seed origin to source-function name, used to name the origin of
    a violation in its message."""
    program = inference.program
    seed_functions: dict[Origin, str] = {}
    for check in checks:
        if check.syntactic_casts:
            continue
        seed = check.seed_element(inference.lattice)
        for rule in check.sources:
            sig = inference.signatures.get(rule.function)
            if sig is None:
                continue
            line, col, file = _decl_span(program, rule.function)
            origin = inference.origin(
                f"{check.qualifier} source {rule.function}", line, col, file
            )
            seed_functions[origin] = rule.function
            if rule.where == "return":
                cells = [sig.ret_cell]
            elif rule.index is None:
                cells = list(sig.params)
            else:
                cells = sig.params[rule.index : rule.index + 1]
            for cell in cells:
                for qual in quals_of(cell.rvalue):
                    if isinstance(qual, QualVar):
                        inference.emit(seed, qual, origin)
    return seed_functions


def _collect_obligations(
    inference: CheckerInference, checks: tuple[QualifierCheck, ...]
) -> list[_Obligation]:
    obligations: list[_Obligation] = []
    for check in checks:
        if check.syntactic_casts:
            continue
        bound = check.sink_bound(inference.lattice)
        for rule in check.sinks:
            sig = inference.signatures.get(rule.function)
            if sig is None or rule.index >= len(sig.params):
                continue
            line, col, file = _decl_span(inference.program, rule.function)
            message = check.message.format(
                function=rule.function,
                index=rule.index,
                qualifier=check.qualifier,
            )
            if rule.describe:
                message += f" [{rule.describe}]"
            for qual in quals_of(sig.params[rule.index].rvalue):
                obligations.append(
                    _Obligation(
                        check,
                        qual,
                        bound,
                        Span(file, line, col),
                        message,
                        site=(check.name, rule.function, rule.index),
                    )
                )
        if check.deref_requires:
            for qual, span in inference.deref_sites:
                obligations.append(
                    _Obligation(
                        check,
                        qual,
                        bound,
                        span,
                        check.message,  # {function} filled from the flow path
                        site=(check.name, "deref", span),
                        sink_step=FlowStep("dereferenced here", span),
                    )
                )
    return obligations


def _flow_steps(path: list[QualConstraint]) -> tuple[FlowStep, ...]:
    return tuple(
        FlowStep(note=c.origin.reason, span=Span.from_origin(c.origin)) for c in path
    )


def _primary_span(flow: tuple[FlowStep, ...], fallback: Span) -> Span:
    for step in reversed(flow):
        if step.span.is_valid:
            return step.span
    return fallback


def _check_obligations(
    inference: CheckerInference,
    solution,
    obligations: list[_Obligation],
    seed_functions: dict[Origin, str],
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    reported: set[tuple] = set()
    for ob in obligations:
        if ob.site in reported:
            continue
        if isinstance(ob.qual, QualVar):
            least = solution.least_of(ob.qual)
        else:
            least = ob.qual
        if inference.lattice.leq(least, ob.bound):
            continue
        flow: tuple[FlowStep, ...] = ()
        message = ob.message
        if isinstance(ob.qual, QualVar):
            path = shortest_flow_path(
                inference.constraints, inference.lattice, ob.qual, ob.bound
            )
            if path:
                flow = _flow_steps(path)
                source = seed_functions.get(path[0].origin)
                if source is not None and "{function}" in message:
                    message = message.format(function=source)
        if ob.sink_step is not None:
            flow = flow + (ob.sink_step,)
        if "{function}" in message:
            message = message.format(function="an unchecked source")
        reported.add(ob.site)
        diagnostics.append(
            Diagnostic(
                check=ob.check.name,
                qualifier=ob.check.qualifier,
                severity=ob.check.severity,
                message=message,
                span=_primary_span(flow, ob.span),
                flow=flow,
            )
        )
    return diagnostics


def _const_violation(exc: UnsatisfiableError) -> Diagnostic:
    flow = _flow_steps(exc.path) if exc.path else ()
    fallback = Span.from_origin(exc.constraint.origin)
    return Diagnostic(
        check="const-violation",
        qualifier="const",
        severity="error",
        message=str(exc).splitlines()[0],
        span=_primary_span(flow, fallback),
        flow=flow,
    )


# ---------------------------------------------------------------------------
# The syntactic casts-away-const walk
# ---------------------------------------------------------------------------


def _pointee(t: CType | None) -> CType | None:
    if isinstance(t, CArray):
        return t.element
    if isinstance(t, CPointer):
        return t.target
    return None


def _expr_ctype(
    e: ast.CExpr, env: dict[str, CType], program: Program
) -> CType | None:
    """Best-effort declared C type of an expression — enough to classify
    the operand of a cast.  Returns None when the type is not statically
    apparent (the cast is then skipped, never misreported)."""
    match e:
        case ast.Ident(name=n):
            if n in env:
                return env[n]
            decl = program.globals.get(n)
            if decl is not None:
                return decl.type
            fn = program.functions.get(n) or program.prototypes.get(n)
            if fn is not None:
                return CFunc(fn.ret, tuple(p.type for p in fn.params), fn.varargs)
            return None
        case ast.Cast(target_type=t):
            return t
        case ast.StringConst():
            return CPointer(CBase("char"))
        case ast.Unary(op="&", operand=inner, postfix=False):
            inner_t = _expr_ctype(inner, env, program)
            return CPointer(inner_t) if inner_t is not None else None
        case ast.Unary(op="*", operand=inner, postfix=False):
            return _pointee(_expr_ctype(inner, env, program))
        case ast.Unary(operand=inner):
            return _expr_ctype(inner, env, program)
        case ast.Index(base=b):
            return _pointee(_expr_ctype(b, env, program))
        case ast.Member(base=b, field_name=f, arrow=arrow):
            base_t = _expr_ctype(b, env, program)
            if arrow:
                base_t = _pointee(base_t)
            if isinstance(base_t, CStruct):
                struct = program.structs.get(base_t.tag)
                if struct is not None:
                    for fd in struct.fields:
                        if fd.name == f:
                            return fd.type
            return None
        case ast.Call(func=f):
            fn_t = _expr_ctype(f, env, program)
            fn_t = _pointee(fn_t) or fn_t
            return fn_t.ret if isinstance(fn_t, CFunc) else None
        case ast.Assignment(target=t):
            return _expr_ctype(t, env, program)
        case ast.Comma(right=r):
            return _expr_ctype(r, env, program)
        case ast.Conditional(then=t):
            return _expr_ctype(t, env, program)
        case _:
            return None


def _cast_walk_expr(
    e: ast.CExpr,
    env: dict[str, CType],
    program: Program,
    check: QualifierCheck,
    file: str,
    out: list[Diagnostic],
) -> None:
    if isinstance(e, ast.Cast):
        src = _expr_ctype(e.operand, env, program)
        if src is not None and classify_cast(src, e.target_type) is CastClass.AWAY_CONST:
            span = Span(file, e.line, e.col)
            message = check.message.format(
                source_type=format_ctype(src),
                target_type=format_ctype(e.target_type),
            )
            out.append(
                Diagnostic(
                    check=check.name,
                    qualifier=check.qualifier,
                    severity=check.severity,
                    message=message,
                    span=span,
                    flow=(FlowStep(note=message, span=span),),
                )
            )
    for name in type(e).__dataclass_fields__:
        value = getattr(e, name)
        if isinstance(value, ast.CExpr):
            _cast_walk_expr(value, env, program, check, file, out)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, ast.CExpr):
                    _cast_walk_expr(item, env, program, check, file, out)


def _cast_walk_stmt(
    s: ast.CStmt,
    env: dict[str, CType],
    program: Program,
    check: QualifierCheck,
    file: str,
    out: list[Diagnostic],
) -> None:
    if isinstance(s, ast.Compound):
        inner = dict(env)
        for child in s.body:
            _cast_walk_stmt(child, inner, program, check, file, out)
        return
    if isinstance(s, ast.DeclStmt):
        for decl in s.decls:
            if decl.init is not None:
                _cast_walk_expr(decl.init, env, program, check, file, out)
            env[decl.name] = decl.type
        return
    for name in type(s).__dataclass_fields__:
        value = getattr(s, name)
        if isinstance(value, ast.CExpr):
            _cast_walk_expr(value, env, program, check, file, out)
        elif isinstance(value, ast.CStmt):
            _cast_walk_stmt(value, env, program, check, file, out)
        elif isinstance(value, ast.DeclStmt):
            _cast_walk_stmt(value, env, program, check, file, out)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, ast.CStmt):
                    _cast_walk_stmt(item, env, program, check, file, out)
                elif isinstance(item, ast.CExpr):
                    _cast_walk_expr(item, env, program, check, file, out)


def _cast_diagnostics(program: Program, check: QualifierCheck) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for fdef in program.functions.values():
        env = {p.name: p.type for p in fdef.params if p.name}
        _cast_walk_stmt(fdef.body, env, program, check, fdef.file, out)
    for decl in program.globals.values():
        if decl.init is not None:
            _cast_walk_expr(decl.init, {}, program, check, decl.file, out)
    return out


# ---------------------------------------------------------------------------
# Flow-sensitive linearity pack (double-free / use-after-free / leak)
# ---------------------------------------------------------------------------


def _flow_pack_diagnostics(
    program: Program,
    checks: tuple[QualifierCheck, ...],
    ownership=None,
) -> list[Diagnostic]:
    """Run the resource pack over every function body.

    Each function is lowered into the flowsens language and analysed
    independently (:mod:`repro.flowsens.lower` /
    :mod:`repro.flowsens.linear`); engine-side findings are adapted to
    diagnostics here so the flowsens package stays checker-free.
    ``ownership`` carries inferred callee summaries
    (:mod:`repro.whole.ownership`, whole-program mode only): summarised
    call sites lower to the callee's declared effect instead of the
    unknown-callee havoc, which is what lets a finding's flow path
    cross translation units.  Functions the lowering marks unstructured
    (goto/switch) and shapes the engine cannot analyse are skipped —
    best-effort, like the rest of the resilient pipeline."""
    from ..flowsens.linear import analyze_function_resources
    from ..flowsens.lower import DEFAULT_POLICY, lower_function
    from ..qual.qualifiers import resource_lattice

    policy = DEFAULT_POLICY
    if ownership:
        from ..flowsens.ownership import with_summaries

        policy = with_summaries(DEFAULT_POLICY, ownership)
    by_name = {c.name: c for c in checks}
    out: list[Diagnostic] = []
    lattice = resource_lattice()
    for fdef in program.functions.values():
        try:
            lowered = lower_function(fdef, lattice, policy)
            findings = analyze_function_resources(lowered, lattice)
        except Exception:
            # Salvaged/partial ASTs can hold shapes the lowering has
            # never seen; resource findings are best-effort extras and
            # must never take down the unit.
            continue
        for finding in findings:
            check = by_name.get(finding.kind)
            if check is None:
                continue
            out.append(
                Diagnostic(
                    check=check.name,
                    qualifier=check.qualifier,
                    severity=check.severity,
                    message=check.message.format(
                        variable=finding.variable,
                        function=finding.function,
                    ),
                    span=Span(finding.file, finding.line, finding.col),
                    flow=tuple(
                        FlowStep(
                            note=step.note,
                            span=Span(step.file, step.line, step.col),
                        )
                        for step in finding.flow
                    ),
                )
            )
    return out


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _sort_key(d: Diagnostic):
    return (d.span.file, d.span.line, d.span.column, d.check, d.message)


def check_program(
    program: Program,
    checks: tuple[QualifierCheck, ...] = DEFAULT_CHECKS,
    *,
    ownership=None,
) -> list[Diagnostic]:
    """Run every enabled check over one semantic program.  Diagnostics
    come back in deterministic (file, line, column, check) order, without
    fingerprints or suppressions — the runner adds those (it holds the
    source text).  ``ownership`` (whole-program mode) feeds inferred
    callee summaries to the resource pack."""
    checks = tuple(checks)
    diagnostics: list[Diagnostic] = []

    for check in checks:
        if check.syntactic_casts:
            diagnostics.extend(_cast_diagnostics(program, check))

    pack_checks = tuple(c for c in checks if c.flow_pack)
    if pack_checks:
        diagnostics.extend(
            _flow_pack_diagnostics(program, pack_checks, ownership)
        )

    flow_checks = tuple(
        c for c in checks if not c.syntactic_casts and not c.flow_pack
    )
    if flow_checks:
        inference = CheckerInference(program, lattice_for(flow_checks))
        _create_shared_cells(inference)
        for fdef in program.functions.values():
            inference.signature_for(fdef)
        for fdef in program.functions.values():
            inference.analyze_function(fdef)
        inference.analyze_global_initializers()

        seed_functions = _seed_checks(inference, flow_checks)
        obligations = _collect_obligations(inference, flow_checks)
        extra = [ob.qual for ob in obligations if isinstance(ob.qual, QualVar)]
        try:
            solution = solve(
                inference.constraints, inference.lattice, extra_vars=extra
            )
        except UnsatisfiableError as exc:
            # The const coordinate is inconsistent (write through a cell
            # that must be const): no least solution exists, so bound
            # checks cannot run for this unit.  Report the conflict
            # itself — with its witness path — and degrade gracefully.
            diagnostics.append(_const_violation(exc))
        else:
            diagnostics.extend(
                _check_obligations(inference, solution, obligations, seed_functions)
            )

    return sorted(diagnostics, key=_sort_key)


def check_source(
    source: str,
    filename: str = "<input>",
    checks: tuple[QualifierCheck, ...] = DEFAULT_CHECKS,
) -> list[Diagnostic]:
    """Parse one C translation unit and run the checks over it."""
    program = Program.from_source(source, filename=filename)
    return check_program(program, checks)


#: Check name for front-end (lexer/parser) error findings.
PARSE_CHECK = "parse-error"

#: Check name for preprocessor findings (``stage="cpp"`` diagnostics).
CPP_CHECK = "preprocessor"


def parse_findings(parse_diagnostics) -> list[Diagnostic]:
    """Convert front-end :class:`~repro.cfront.clexer.ParseDiagnostic`
    records into checker diagnostics, so they fingerprint, suppress,
    and render (human/JSON/SARIF) exactly like qualifier findings."""
    out: list[Diagnostic] = []
    for d in parse_diagnostics:
        out.append(
            Diagnostic(
                check=CPP_CHECK if d.stage == "cpp" else PARSE_CHECK,
                qualifier="syntax",
                severity="error" if d.severity == "error" else "warning",
                message=d.describe(),
                span=Span(d.file, d.line, d.column),
            )
        )
    return out


def _unit_status(result) -> str:
    """Classify one resilient parse: ``ok`` (no errors), ``partial``
    (errors but declarations salvaged), ``skipped`` (nothing usable)."""
    if result.ok:
        return "ok"
    return "partial" if result.unit.items else "skipped"


def check_source_resilient(
    source: str,
    filename: str = "<input>",
    checks: tuple[QualifierCheck, ...] = DEFAULT_CHECKS,
    include_paths: tuple[str, ...] = (),
) -> tuple[list[Diagnostic], str, int]:
    """Best-effort single-unit check: preprocess, parse with panic-mode
    recovery, and analyse whatever was salvaged.

    Never raises on bad input.  Returns ``(diagnostics, status,
    functions)`` where diagnostics merge front-end findings with
    qualifier findings in span order, status is ``ok``/``partial``/
    ``skipped``, and functions counts the definitions that were
    actually analysed.
    """
    from ..cfront.cparser import parse_c_resilient

    result = parse_c_resilient(source, filename, include_paths=include_paths)
    status = _unit_status(result)
    diagnostics = parse_findings(result.diagnostics)
    functions = 0
    try:
        program = Program.from_units([result.unit])
        functions = len(program.functions)
        diagnostics.extend(check_program(program, checks))
    except Exception as exc:  # salvaged subset the analysis can't hold
        status = "skipped"
        functions = 0
        diagnostics.append(
            Diagnostic(
                check=PARSE_CHECK,
                qualifier="syntax",
                severity="error",
                message=f"analysis failed on recovered unit: "
                f"{type(exc).__name__}: {exc}",
                span=Span(filename, 0, 0),
            )
        )
    return sorted(diagnostics, key=_sort_key), status, functions


def check_linked_program(
    linked,
    checks: tuple[QualifierCheck, ...] = DEFAULT_CHECKS,
    *,
    cache=None,
) -> list[Diagnostic]:
    """Run the checks over a whole linked program
    (:class:`repro.whole.linker.LinkedProgram`).

    Linker-level findings (conflicting qualified types across units,
    multiple definitions) come first as ``link-*`` diagnostics; then the
    ordinary checks run over the merged program, so qualifier flows that
    cross translation units — a tainted value returned by one file's
    function and printed by another's — surface with flow paths spanning
    both files (every constraint origin carries its own filename).

    When the resource pack is enabled, per-function ownership summaries
    are inferred bottom-up over the cross-TU call graph first
    (:func:`repro.whole.ownership.ownership_for_linked`, per-unit
    cached through ``cache``), so pack findings cross units too: an
    allocation in one file lost or double-freed in another."""
    diagnostics = [
        Diagnostic(
            check=f"link-{link_diag.kind}",
            qualifier="linkage",
            severity="error",
            message=link_diag.message,
            span=Span(link_diag.file, link_diag.line, link_diag.column),
        )
        for link_diag in linked.diagnostics
    ]
    ownership = None
    if any(c.flow_pack for c in checks):
        try:
            from ..whole.ownership import ownership_for_linked

            ownership = ownership_for_linked(linked, cache=cache)
        except Exception:
            # Summaries are an accuracy upgrade, never a requirement:
            # without them every call site keeps the havoc firewall.
            ownership = None
    diagnostics.extend(
        check_program(linked.program, checks, ownership=ownership)
    )
    return sorted(diagnostics, key=_sort_key)


# ---------------------------------------------------------------------------
# Lambda-language adapter
# ---------------------------------------------------------------------------


def check_lambda_source(
    source: str,
    filename: str = "<lam>",
    language=None,
    env=None,
    polymorphic: bool = False,
) -> list[Diagnostic]:
    """Check a lambda program (the paper's example language) and report
    qualifier violations as qlint diagnostics.

    Unlike the C pipeline, the lambda system emits assertions *as
    constraints*, so a violation surfaces as an unsatisfiable system;
    the structured :class:`~repro.qual.solver.UnsatisfiableError` is
    recovered through ``QualTypeError.__cause__`` and its witness path
    becomes the diagnostic's flow.  A clean program yields ``[]``.
    """
    from ..apps.taint import taint_language
    from ..lam.infer import QualTypeError, infer
    from ..lam.parser import parse

    if language is None:
        language = taint_language()
    expr = parse(source)
    try:
        infer(expr, language, env=env, polymorphic=polymorphic)
    except QualTypeError as exc:
        cause = exc.__cause__
        if not isinstance(cause, UnsatisfiableError):
            return [
                Diagnostic(
                    check="lambda-qualifier",
                    qualifier="",
                    severity="error",
                    message=str(exc).splitlines()[0],
                    span=Span(filename, 0, 0),
                )
            ]
        qualifier = _violated_qualifier(cause)
        flow = tuple(
            FlowStep(
                note=c.origin.reason,
                span=Span(
                    filename, c.origin.line or 0, c.origin.column or 0
                ),
            )
            for c in (cause.path or [cause.constraint])
        )
        return [
            Diagnostic(
                check="lambda-qualifier",
                qualifier=qualifier,
                severity="error",
                message=str(cause).splitlines()[0],
                span=_primary_span(flow, Span(filename, 0, 0)),
                flow=flow,
            )
        ]
    return []


def _violated_qualifier(exc: UnsatisfiableError) -> str:
    """Name the coordinate where ``lower <= upper`` fails: a positive
    qualifier the lower bound has but the upper forbids, or a negative
    one the upper requires but the lower lacks."""
    lower = set(exc.lower.present)
    upper = set(exc.upper.present)
    extra = sorted(lower - upper)
    if extra:
        return extra[0]
    missing = sorted(upper - lower)
    return missing[0] if missing else ""
