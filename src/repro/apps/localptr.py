"""Titanium-style ``local`` pointers as a qualifier instance ([YSP+98]).

Titanium distinguishes pointers to processor-local memory (``local``,
cheap loads) from possibly-remote pointers (unannotated, requiring
network operations).  A pointer annotated local must be local; an
unannotated pointer may be either — so ``local`` is a *negative*
qualifier: ``local tau <= tau``.

The payoff in Titanium is compiler-removable run-time tests; here we
model that as a *cost analysis*: after qualifier inference, every
dereference whose reference is provably local costs 1 (a load), every
other dereference costs a configurable remote factor.  The inference is
the stock framework — the only Titanium-specific ingredients are the
qualifier and the cost interpretation, which is the paper's point about
how little machinery a new qualifier needs.

Fresh ``ref`` cells are local by construction (negative qualifiers hold
at bottom); values received from remote machines are modelled by
removing the qualifier with ``{} e``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lam.ast import Deref, Expr, walk
from ..lam.infer import Inference, QualifiedLanguage, infer
from ..lam.parser import parse
from ..qual.qtypes import QType, QualVar, REF
from ..qual.qualifiers import local_lattice


def local_language() -> QualifiedLanguage:
    return QualifiedLanguage(local_lattice())


@dataclass
class AccessCosts:
    """Dereference cost model after local-pointer inference."""

    inference: Inference
    remote_factor: int = 100

    def _ref_is_local(self, node: Expr) -> bool:
        qtype = self.inference.node_qtypes.get(id(node))
        if qtype is None or qtype.constructor is not REF:
            return False
        qual = qtype.qual
        if isinstance(qual, QualVar):
            # A dereference is statically cheap only if *every* value
            # reaching it is local.  The least solution is the join of
            # the actual inflows, and a negative qualifier survives a
            # join only if every inflow carries it.
            return self.inference.solution.least_of(qual).has("local")
        return qual.has("local")

    def dereference_costs(self, root: Expr) -> list[tuple[Expr, int]]:
        """Cost of every dereference in the program."""
        out = []
        for node in walk(root):
            if isinstance(node, Deref):
                local = self._ref_is_local(node.ref)
                out.append((node, 1 if local else self.remote_factor))
        return out

    def total_cost(self, root: Expr) -> int:
        return sum(cost for _node, cost in self.dereference_costs(root))

    def local_fraction(self, root: Expr) -> float:
        costs = self.dereference_costs(root)
        if not costs:
            return 1.0
        return sum(1 for _n, c in costs if c == 1) / len(costs)


def analyze_locality(
    expr: Expr,
    env: dict[str, QType] | None = None,
    polymorphic: bool = False,
    remote_factor: int = 100,
) -> AccessCosts:
    """Run local-pointer inference and wrap the cost model around it."""
    result = infer(expr, local_language(), env=env, polymorphic=polymorphic)
    return AccessCosts(result, remote_factor)


def check_source(source: str, **kwargs) -> AccessCosts:
    return analyze_locality(parse(source), **kwargs)
