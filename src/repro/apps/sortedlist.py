"""The sorted-list qualifier of Section 2.3.

"Perhaps the most obvious kind of type qualifier to add is one that
captures a property of a data structure."  ``sorted`` is a negative
qualifier on list values: sorted lists are a subset of all lists.  Sort
functions are *trusted* to return sorted lists (the paper: "We do not
attempt to verify that sorted is placed correctly — we simply assume
it is"), and consumers such as ``merge`` assert their inputs sorted.

Our lambda language has no built-in lists, so this instance encodes a
list as a reference-chained structure built by library combinators whose
qualified types are *given*, exactly as a user of the framework would
annotate a list library:

* ``nil  : sorted list``  (the empty list is vacuously sorted)
* ``cons : int -> list -> list``  (consing forgets sortedness)
* ``sort : list -> sorted list``  (trusted)
* ``merge : sorted list -> sorted list -> sorted list`` (checked inputs)

The checking happens entirely in the qualifier system: passing an
unsorted list where a sorted one is asserted is a type error.
"""

from __future__ import annotations

from ..lam.infer import QualifiedLanguage
from ..qual.qtypes import (
    LIST,
    QCon,
    QType,
    fresh_qual_var,
    q_fun,
    q_int,
    qt,
)
from ..qual.qualifiers import sorted_lattice


def sorted_language() -> QualifiedLanguage:
    return QualifiedLanguage(sorted_lattice())


def list_type(qual, element: QType | None = None) -> QType:
    """A qualified list type; elements default to unqualified ints."""
    lattice = sorted_lattice()
    if element is None:
        element = q_int(lattice.bottom)
    return qt(qual, LIST, element)


def library_env() -> dict[str, QType]:
    """Qualified types for the trusted list library.

    ``sorted`` is present at lattice bottom (negative qualifier), so the
    sorted list type is the *bottom*-qualified list and the
    possibly-unsorted type is the top (qualifier removed).
    """
    lattice = sorted_lattice()
    sorted_q = lattice.bottom  # {sorted}
    any_q = lattice.top  # absence of sorted

    def lst(q) -> QType:
        return list_type(q)

    bot = lattice.bottom
    return {
        # nil : sorted list
        "nil": lst(sorted_q),
        # cons : int -> list -> list   (result possibly unsorted)
        "cons": q_fun(bot, q_int(bot), q_fun(bot, lst(any_q), lst(any_q))),
        # sort : list -> sorted list   (trusted annotation)
        "sort": q_fun(bot, lst(any_q), lst(sorted_q)),
        # merge : sorted -> sorted -> sorted  (inputs checked)
        "merge": q_fun(bot, lst(sorted_q), q_fun(bot, lst(sorted_q), lst(sorted_q))),
        # head : list -> int  (works on any list)
        "head": q_fun(bot, lst(any_q), q_int(bot)),
    }


def fresh_list() -> QType:
    """A list type with an unconstrained qualifier (for building tests)."""
    return list_type(fresh_qual_var())
