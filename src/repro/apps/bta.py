"""Binding-time analysis as a qualifier instance (Sections 1–2, [DHM95]).

Binding-time analysis marks values known at specialisation time
``static`` and possibly-run-time values ``dynamic``.  In qualifier terms
(the paper's own framing): ``dynamic`` is a *positive* qualifier,
``static`` is just the name of its absence, and values may be promoted
``static -> dynamic`` but never back.

The binding-time well-formedness condition — "nothing dynamic may appear
within a value that is static", so ``static (dynamic a -> dynamic b)``
is ill-formed — is the paper's flagship example of a per-qualifier
well-formedness rule; here it is
:data:`~repro.qual.wellformed.ChildQualLeqParent` over ``dynamic``.

The analysis itself: annotate program inputs ``{dynamic}``, run ordinary
qualifier inference, and read each expression's binding time off the
least solution.  Everything not forced dynamic is static — exactly the
code a partial evaluator may execute at specialisation time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lam.ast import Expr
from ..lam.infer import Inference, QualifiedLanguage, infer
from ..qual.lattice import QualifierLattice
from ..qual.qtypes import QType, QualVar
from ..qual.qualifiers import binding_time_lattice
from ..qual.wellformed import ChildQualLeqParent


def binding_time_language() -> QualifiedLanguage:
    """The lambda language configured for binding-time analysis."""
    return QualifiedLanguage(
        binding_time_lattice(),
        wellformed=(ChildQualLeqParent("dynamic"),),
        # The BTA-specific rule modification: the branch taken depends on
        # the guard, so a dynamic guard makes the if-result dynamic.
        guard_flows_to_result=True,
    )


@dataclass
class BindingTimes:
    """Binding-time classification of a program's subexpressions."""

    inference: Inference

    def is_dynamic(self, node: Expr) -> bool:
        """Whether the node's value may depend on run-time input."""
        qtype = self.inference.node_qtypes.get(id(node))
        if qtype is None:
            raise KeyError(f"no type recorded for node {node}")
        qual = qtype.qual
        if isinstance(qual, QualVar):
            return self.inference.solution.least_of(qual).has("dynamic")
        return qual.has("dynamic")

    def is_static(self, node: Expr) -> bool:
        """Static is the absence of dynamic."""
        return not self.is_dynamic(node)

    def static_fraction(self) -> float:
        """Fraction of typed nodes that stay static — the quantity a
        partial evaluator cares about (more static = more specialised)."""
        nodes = list(self.inference.node_qtypes)
        if not nodes:
            return 1.0
        static = 0
        for key, qtype in self.inference.node_qtypes.items():
            qual = qtype.qual
            if isinstance(qual, QualVar):
                dynamic = self.inference.solution.least_of(qual).has("dynamic")
            else:
                dynamic = qual.has("dynamic")
            if not dynamic:
                static += 1
        return static / len(nodes)


def analyze_binding_times(
    expr: Expr,
    env: dict[str, QType] | None = None,
    polymorphic: bool = False,
) -> BindingTimes:
    """Infer binding times for a program.

    Inputs should be annotated ``{dynamic}`` in the source (or given
    dynamic types through ``env``); the least solution then says which
    expressions a specialiser must residualise.
    """
    language = binding_time_language()
    result = infer(expr, language, env=env, polymorphic=polymorphic)
    return BindingTimes(result)


def lattice() -> QualifierLattice:
    return binding_time_lattice()
