"""Multi-level trust as a qualifier chain ([O/P97], Section 5).

Ørbæk and Palsberg's trust analysis has two levels; their paper (and
this one's related-work section) suggests generalising to *multiple*
levels of trust — "similar to our idea of a lattice of type
qualifiers".  A total order of n+1 trust levels

    level_0 (fully trusted)  <  level_1  <  ...  <  level_n (untrusted)

embeds into the product-of-two-point-lattices framework as n positive
qualifiers ``atleast_1 .. atleast_n`` ("distrust at least i") with the
*chain invariant* ``atleast_{i+1} present => atleast_i present``: the
upward-closed subsets of a chain are exactly the chain again, so the
invariant carves the (i+1)-element total order out of the 2^n product.

The invariant is enforced with ordinary atomic constraints (for ground
elements it is checked directly), so nothing in the solver changes —
the point of the exercise, as with every other instance.

:class:`TrustLevels` packages the encoding: building level constants,
reading a level back off a lattice element, the chain's well-formedness
check, and a :func:`trust_language` for the lambda language where sinks
requiring at most level i are assertions ``e|bound(i)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lam.infer import QualifiedLanguage
from ..qual.lattice import LatticeElement, QualifierLattice, positive


@dataclass
class TrustLevels:
    """An (n+1)-level total order of trust encoded as n chained positive
    qualifiers."""

    count: int
    lattice: QualifierLattice = field(init=False)

    def __post_init__(self) -> None:
        if self.count < 2:
            raise ValueError("need at least two trust levels")
        names = [f"atleast_{i}" for i in range(1, self.count)]
        self.lattice = QualifierLattice([positive(n) for n in names])

    # -- encoding --------------------------------------------------------
    def level(self, index: int) -> LatticeElement:
        """The lattice element of trust level ``index`` (0 = trusted)."""
        if not 0 <= index < self.count:
            raise ValueError(f"level {index} out of range 0..{self.count - 1}")
        return self.lattice.element(
            *(f"atleast_{i}" for i in range(1, index + 1))
        )

    def level_of(self, element: LatticeElement) -> int:
        """Read a chain element's level; reject non-chain elements."""
        if not self.is_chain_element(element):
            raise ValueError(f"{element} violates the chain invariant")
        return sum(
            1
            for i in range(1, self.count)
            if element.has(f"atleast_{i}")
        )

    def is_chain_element(self, element: LatticeElement) -> bool:
        """The chain invariant: atleast_{i+1} implies atleast_i."""
        present = [element.has(f"atleast_{i}") for i in range(1, self.count)]
        return all(
            earlier or not later for earlier, later in zip(present, present[1:])
        )

    def sink_bound(self, max_level: int) -> LatticeElement:
        """Assertion constant for a sink accepting at most ``max_level``:
        exactly :meth:`level`, since ``e|l`` checks ``Q <= l`` and the
        chain order coincides with the lattice order on chain elements."""
        return self.level(max_level)

    # -- properties ------------------------------------------------------
    def all_levels(self) -> list[LatticeElement]:
        return [self.level(i) for i in range(self.count)]

    def join_is_max(self, a: int, b: int) -> bool:
        """On chain elements, lattice join computes max of levels."""
        joined = self.lattice.join(self.level(a), self.level(b))
        return self.level_of(joined) == max(a, b)


def trust_language(levels: TrustLevels) -> QualifiedLanguage:
    """The lambda language over a trust chain: plain subsumption up the
    chain, sinks as assertions."""
    return QualifiedLanguage(levels.lattice)
