"""lclint-style nonnull pointers as a qualifier instance ([Eva96]).

``nonnull`` is a *negative* qualifier: the set of definitely-non-null
references is a subset of all references, so ``nonnull tau <= tau``.  A
freshly created reference is non-null by construction (negative
qualifiers are present at lattice bottom, which is where ``ref`` cells
enter the system); a pointer that may be null has been *promoted* by
removing the qualifier with the annotation ``{} e``.

The dereference discipline is a per-qualifier rule hook (Section 2.4
style): every ``!e`` requires the reference's qualifier to retain
``nonnull``, so any value that lost the qualifier on some path cannot be
dereferenced at all.  Qualifiers are flow-insensitive (types are fixed
for the whole program), so a run-time null test cannot restore the
qualifier — exactly the limitation the paper's Future Work section
raises about expressing lclint in the framework, which this instance
makes concrete and the tests document.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lam.ast import Expr
from ..lam.infer import Inference, QualTypeError, QualifiedLanguage, infer
from ..lam.parser import parse
from ..qual.qtypes import QType
from ..qual.qualifiers import nonnull_lattice


def nonnull_language() -> QualifiedLanguage:
    """Lambda language where dereference demands a nonnull reference."""
    return QualifiedLanguage(
        nonnull_lattice(),
        deref_requirements=("nonnull",),
    )


@dataclass
class NullnessReport:
    inference: Inference | None
    violation: str | None

    @property
    def safe(self) -> bool:
        """Every dereference is of a provably non-null reference."""
        return self.violation is None


def analyze_nonnull(
    expr: Expr,
    env: dict[str, QType] | None = None,
    polymorphic: bool = False,
) -> NullnessReport:
    """Check that no possibly-null reference is dereferenced.

    Possibly-null values are marked ``{} e`` (removing nonnull) at their
    creation points — e.g. a lookup that can fail.  Inference rejects the
    program if such a value can reach a dereference.
    """
    language = nonnull_language()
    try:
        result = infer(expr, language, env=env, polymorphic=polymorphic)
    except QualTypeError as exc:
        return NullnessReport(None, str(exc))
    return NullnessReport(result, None)


def check_source(source: str, **kwargs) -> NullnessReport:
    return analyze_nonnull(parse(source), **kwargs)
