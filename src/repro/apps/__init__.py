"""Further qualifier instances from the paper's survey (Sections 1, 5).

Each module configures the generic framework for one qualifier and adds
the thin domain layer around it:

* :mod:`repro.apps.bta` — binding-time analysis (static/dynamic) with the
  "nothing dynamic under static" well-formedness condition.
* :mod:`repro.apps.taint` — Volpano–Smith-style secure information flow
  (tainted/untainted) with source/sink checking.
* :mod:`repro.apps.nonnull` — lclint-style nonnull pointers with a
  dereference discipline.
* :mod:`repro.apps.sortedlist` — the Section 2.3 sorted-list library.
* :mod:`repro.apps.localptr` — Titanium local pointers with the
  dereference cost model the qualifier exists to improve.
* :mod:`repro.apps.trust` — multi-level trust chains embedded into the
  product lattice (the [O/P97] extension).
"""

from . import bta, localptr, nonnull, sortedlist, taint, trust

__all__ = ["bta", "localptr", "nonnull", "sortedlist", "taint", "trust"]
