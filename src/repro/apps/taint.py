"""Secure information flow as a qualifier instance ([VS97], Section 5).

Volpano–Smith-style security typing annotates data with security levels;
in qualifier terms a two-level policy is the positive qualifier
``tainted`` (high/untrusted) whose absence is ``untainted`` (low/
trusted).  Subtyping allows untainted data to flow anywhere, while
tainted data may only flow into tainted positions; a *sink* is expressed
as a qualifier assertion ``e|{}`` (top-level qualifier at most the
untainted element), which inference then checks globally.

Taint propagates through containers via the well-formedness rule
``ChildQualLeqParent("tainted")`` read in reverse — here we instead use
``ParentQualLeqChild`` so that anything *inside* a tainted value is
itself tainted (reading a field of an untrusted record yields untrusted
data).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lam.ast import Expr
from ..lam.infer import Inference, QualTypeError, QualifiedLanguage, infer
from ..lam.parser import parse
from ..qual.qtypes import QType, QualVar
from ..qual.qualifiers import taint_lattice
from ..qual.wellformed import ParentQualLeqChild


def taint_language(deep: bool = True) -> QualifiedLanguage:
    """The lambda language configured for taint tracking.

    With ``deep=True`` a tainted container taints its contents.
    """
    rules = (ParentQualLeqChild("tainted"),) if deep else ()
    return QualifiedLanguage(taint_lattice(), wellformed=rules)


@dataclass
class TaintReport:
    """Outcome of taint analysis over one program."""

    inference: Inference | None
    violation: str | None

    @property
    def secure(self) -> bool:
        """No tainted value can reach an untainted sink."""
        return self.violation is None

    def is_tainted(self, node: Expr) -> bool:
        assert self.inference is not None, "analysis failed; no node info"
        qtype = self.inference.node_qtypes.get(id(node))
        if qtype is None:
            raise KeyError(f"no type recorded for {node}")
        qual = qtype.qual
        if isinstance(qual, QualVar):
            return self.inference.solution.least_of(qual).has("tainted")
        return qual.has("tainted")


def analyze_taint(
    expr: Expr,
    env: dict[str, QType] | None = None,
    polymorphic: bool = False,
    deep: bool = True,
) -> TaintReport:
    """Check a program against the taint policy.

    Sources are written ``{tainted} e`` in the program text; sinks assert
    ``e|{}``.  Returns a report whose ``secure`` flag says whether every
    sink is provably reached only by untainted data.
    """
    language = taint_language(deep)
    try:
        result = infer(expr, language, env=env, polymorphic=polymorphic)
    except QualTypeError as exc:
        return TaintReport(None, str(exc))
    return TaintReport(result, None)


def check_source(source: str, **kwargs) -> TaintReport:
    """Parse and analyze a program for taint flows."""
    return analyze_taint(parse(source), **kwargs)
