"""Reproduction of *A Theory of Type Qualifiers* (Foster, Fähndrich, Aiken;
PLDI 1999).

Top-level packages:

* :mod:`repro.qual` — the qualifier framework: lattices, qualified types,
  constraints, the atomic solver, well-formedness, polymorphism.
* :mod:`repro.lam` — the paper's example lambda language with updateable
  references: parser, standard typing, qualified checking and inference,
  let-polymorphism, and the small-step operational semantics of Figure 5.
* :mod:`repro.cfront` — a from-scratch C front end (lexer, parser, types,
  semantic analysis) plus the Section 4.1 translation of C types to
  ref types.
* :mod:`repro.constinfer` — the Section 4 const-inference system for C,
  monomorphic and polymorphic, with result counting and source
  re-annotation.
* :mod:`repro.apps` — further qualifier instances: binding-time analysis,
  taint tracking, nonnull pointers, sorted lists, Titanium local pointers.
* :mod:`repro.benchsuite` — the deterministic synthetic benchmark programs
  standing in for the paper's six C packages (see DESIGN.md).
"""

__version__ = "1.0.0"
