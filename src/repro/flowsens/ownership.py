"""Per-function ownership summaries for the resource pack.

The linearity pack (:mod:`repro.flowsens.linear`) is per-function: an
unknown callee havocs every pointer argument, which is sound against
false positives but blind to ownership that flows *across* functions.
This module infers, for one function at a time, the facts a caller
needs to do better:

* for each declared parameter, a **verdict** —

  - :data:`PARAM_BORROWS` — the function observes the argument but
    neither frees nor retains it (``strlen``-shaped);
  - :data:`PARAM_FREES` — the function releases the argument on every
    path to every exit (``free``-shaped: the caller's obligation is
    discharged);
  - :data:`PARAM_ESCAPES` — anything else: the function may retain,
    conditionally free, return, or store the argument (the caller must
    havoc, exactly as for an unknown callee);

* whether the function **returns an owned pointer** — every return
  value is NULL or a fresh allocation (``strdup``-shaped), so the
  caller inherits a leak obligation — and the resource kind it carries.

The verdict triple forms a flat lattice: ``BORROWS`` and ``FREES`` are
incomparable facts, ``ESCAPES`` is top; :func:`join_summaries` joins
pointwise (disagreement goes to top, ``returns_owned`` by conjunction).
That join is what the whole-program driver
(:mod:`repro.whole.ownership`) uses inside recursive components.

Inference is a conservative abstract walk over the *lowered* body
(:mod:`repro.flowsens.lower`) tracking which parameters each variable
must/may still hold: :class:`~repro.flowsens.language.Havoc` marks the
held parameters escaped, :class:`~repro.flowsens.language.FreeCell`
marks must-aliases freed, and exit snapshots decide must-free.  Because
the lowering itself substitutes already-computed callee summaries (via
:class:`~repro.flowsens.lower.LowerPolicy.summaries`), summaries
compose bottom-up through helper chains with no extra machinery here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Optional

from ..cfront.cast import (
    Assignment,
    Binary,
    Call,
    CaseStmt,
    Cast,
    CExpr,
    Comma,
    Compound,
    Conditional,
    CStmt,
    DeclStmt,
    DoWhileStmt,
    ExprStmt,
    ForStmt,
    FuncDef,
    Ident,
    IfStmt,
    Index,
    InitList,
    LabeledStmt,
    Member,
    ReturnStmt,
    SwitchStmt,
    Unary,
    VarDecl,
    WhileStmt,
)
from ..cfront.ctypes import CPointer
from ..qual.lattice import QualifierLattice
from ..qual.qualifiers import resource_lattice
from .language import (
    Assign,
    Block,
    CopyPtr,
    ExitPoint,
    FlowExpr,
    FreeCell,
    Havoc,
    If,
    Join,
    LoadCell,
    NewCell,
    Refine,
    StoreCell,
    VarRef,
    While,
)
from .lower import (
    LoweredFunction,
    LowerPolicy,
    _idents_in,
    _is_null,
    _strip,
    lower_function,
)

#: The function only observes the argument (no free, no retention).
PARAM_BORROWS = "borrows"
#: The function releases the argument on every path to every exit.
PARAM_FREES = "frees"
#: Top: the function may retain / conditionally free / store it.
PARAM_ESCAPES = "escapes"


@dataclass(frozen=True)
class OwnershipSummary:
    """What a caller may assume about one function's pointer behaviour."""

    name: str
    #: One verdict per *declared* parameter, by position.
    params: tuple[str, ...]
    #: Every return value is NULL or a fresh owned allocation.
    returns_owned: bool
    #: Resource kind of the owned return ("heap", "file"); "" when not
    #: ``returns_owned``.
    returns_kind: str
    file: str = field(default="", compare=False)
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


def escaping_summary(fdef: FuncDef) -> OwnershipSummary:
    """The top summary: every argument escapes, nothing owned returned.

    Behaviourally identical to having no summary at all (the unknown-
    callee havoc); used as the conservative fallback inside recursive
    components that fail to stabilise.
    """
    return OwnershipSummary(
        name=fdef.name,
        params=tuple(PARAM_ESCAPES for _ in fdef.params),
        returns_owned=False,
        returns_kind="",
        file=fdef.file,
        line=fdef.line,
        col=fdef.col,
    )


def join_summaries(a: OwnershipSummary, b: OwnershipSummary) -> OwnershipSummary:
    """Pointwise join: parameter disagreement goes to ``ESCAPES``
    (top of the flat verdict lattice), ``returns_owned`` only survives
    when both sides agree on it and on the kind."""
    if a.name != b.name:
        raise ValueError(f"joining summaries of {a.name!r} and {b.name!r}")
    width = max(len(a.params), len(b.params))

    def at(s: OwnershipSummary, i: int) -> str:
        return s.params[i] if i < len(s.params) else PARAM_ESCAPES

    params = tuple(
        at(a, i) if at(a, i) == at(b, i) else PARAM_ESCAPES
        for i in range(width)
    )
    owned = a.returns_owned and b.returns_owned and a.returns_kind == b.returns_kind
    return OwnershipSummary(
        name=a.name,
        params=params,
        returns_owned=owned,
        returns_kind=a.returns_kind if owned else "",
        file=a.file,
        line=a.line,
        col=a.col,
    )


# ---------------------------------------------------------------------------
# Parameter verdicts: an abstract walk over the lowered body.
# ---------------------------------------------------------------------------


@dataclass
class _WalkState:
    """Which parameters each variable must / may still hold, and which
    parameters are definitely freed on the path so far."""

    alias: dict[str, frozenset[str]] = field(default_factory=dict)
    may: dict[str, frozenset[str]] = field(default_factory=dict)
    freed: frozenset[str] = frozenset()
    terminated: bool = False

    def copy(self) -> "_WalkState":
        return _WalkState(dict(self.alias), dict(self.may), self.freed, self.terminated)


@dataclass
class _WalkFacts:
    """Path-insensitive accumulators across the whole walk."""

    escaped: set[str] = field(default_factory=set)
    may_freed: set[str] = field(default_factory=set)
    #: must-freed parameter snapshot at each reachable exit
    exits: list[frozenset[str]] = field(default_factory=list)
    #: parameters, declared locals, and lowering temps — anything else
    #: (a global) outlives the call, so writing a parameter into it is
    #: an escape.
    local_names: frozenset[str] = frozenset()

    def is_local(self, name: str) -> bool:
        return name in self.local_names or name.startswith("%")


def _expr_params(expr: FlowExpr, state: _WalkState) -> frozenset[str]:
    """Parameters an expression's value may carry (via VarRef reads)."""
    match expr:
        case VarRef(name=name):
            return state.alias.get(name, frozenset()) | state.may.get(
                name, frozenset()
            )
        case Join(left=left, right=right):
            return _expr_params(left, state) | _expr_params(right, state)
        case _:
            return frozenset()


def _merge(a: _WalkState, b: _WalkState) -> _WalkState:
    if a.terminated and b.terminated:
        out = a.copy()
        out.terminated = True
        return out
    if a.terminated:
        return b.copy()
    if b.terminated:
        return a.copy()
    out = _WalkState()
    for var in set(a.alias) | set(b.alias):
        out.alias[var] = a.alias.get(var, frozenset()) & b.alias.get(
            var, frozenset()
        )
    for var in set(a.may) | set(b.may):
        out.may[var] = a.may.get(var, frozenset()) | b.may.get(var, frozenset())
    out.freed = a.freed & b.freed
    return out


def _walk(block: Block, state: _WalkState, facts: _WalkFacts) -> _WalkState:
    for stmt in block:
        if state.terminated:
            return state
        match stmt:
            case NewCell(target=t, site=site):
                if site == f"param:{t}":
                    state.alias[t] = frozenset((t,))
                    state.may[t] = frozenset((t,))
                else:
                    state.alias[t] = frozenset()
                    state.may[t] = frozenset()
            case CopyPtr(target=t, source=s):
                state.alias[t] = state.alias.get(s, frozenset())
                state.may[t] = state.may.get(s, frozenset())
                if not facts.is_local(t):
                    # Copied into a global: the parameter outlives us.
                    facts.escaped |= state.alias[t] | state.may[t]
            case Assign(target=t, value=v):
                carried = _expr_params(v, state)
                state.alias[t] = frozenset()
                state.may[t] = carried
                if not facts.is_local(t):
                    facts.escaped |= carried
            case LoadCell(target=t):
                # Stored pointers were already escaped at the store, so
                # a loaded value cannot resurrect a parameter claim.
                state.alias[t] = frozenset()
                state.may[t] = frozenset()
            case StoreCell(value=v):
                facts.escaped |= _expr_params(v, state)
            case Havoc(target=t):
                facts.escaped |= state.alias.get(t, frozenset())
                facts.escaped |= state.may.get(t, frozenset())
                state.alias[t] = frozenset()
                state.may[t] = frozenset()
            case FreeCell(pointer=p):
                must = state.alias.get(p, frozenset())
                state.freed |= must
                facts.may_freed |= must | state.may.get(p, frozenset())
            case ExitPoint():
                facts.exits.append(state.freed)
                state.terminated = True
            case If(then=then, else_=else_):
                s_then = _walk(then, state.copy(), facts)
                s_else = _walk(else_, state.copy(), facts)
                state = _merge(s_then, s_else)
            case Refine(body=body):
                s_body = _walk(body, state.copy(), facts)
                state = _merge(state, s_body)
            case While(body=body):
                s_body = _walk(body, state.copy(), facts)
                after = _WalkState()
                if not s_body.terminated:
                    for var in set(state.alias) | set(s_body.alias):
                        after.alias[var] = state.alias.get(
                            var, frozenset()
                        ) & s_body.alias.get(var, frozenset())
                    for var in set(state.may) | set(s_body.may):
                        after.may[var] = state.may.get(
                            var, frozenset()
                        ) | s_body.may.get(var, frozenset())
                else:
                    after.alias = dict(state.alias)
                    after.may = dict(state.may)
                # The loop may run zero times: only pre-loop frees are must.
                after.freed = state.freed
                state = after
            case _:
                pass
    return state


def _param_verdicts(
    fdef: FuncDef, fn: LoweredFunction
) -> tuple[str, ...]:
    local_names = {p.name for p in fdef.params if p.name is not None}
    for stmt in _stmts_in(fdef.body):
        if isinstance(stmt, DeclStmt):
            local_names.update(decl.name for decl in stmt.decls)
    facts = _WalkFacts(local_names=frozenset(local_names))
    final = _walk(fn.body, _WalkState(), facts)
    if not final.terminated:
        # Fell off the end without an ExitPoint (shouldn't happen for
        # structured lowerings, which always append one) — treat the
        # fall-through as an exit with the current must-freed set.
        facts.exits.append(final.freed)
    verdicts: list[str] = []
    for param in fdef.params:
        name = param.name
        if name is None or name not in fn.pointer_vars:
            # Unnamed or non-pointer parameters cannot carry the
            # caller's resource: observing them is a borrow.
            verdicts.append(PARAM_BORROWS)
            continue
        if name in facts.escaped:
            verdicts.append(PARAM_ESCAPES)
        elif name in facts.may_freed:
            if facts.exits and all(name in snap for snap in facts.exits):
                verdicts.append(PARAM_FREES)
            else:
                # Freed on some path only: the caller cannot tell
                # whether its obligation was discharged.
                verdicts.append(PARAM_ESCAPES)
        else:
            verdicts.append(PARAM_BORROWS)
    return tuple(verdicts)


# ---------------------------------------------------------------------------
# Owned returns: a conservative scan over the C AST.
# ---------------------------------------------------------------------------


def _stmts_in(stmt: Optional[CStmt]) -> Iterator[CStmt]:
    if stmt is None:
        return
    yield stmt
    match stmt:
        case Compound(body=body):
            for s in body:
                yield from _stmts_in(s)
        case IfStmt(then=then, other=other):
            yield from _stmts_in(then)
            yield from _stmts_in(other)
        case WhileStmt(body=body) | DoWhileStmt(body=body) | SwitchStmt(
            body=body
        ):
            yield from _stmts_in(body)
        case ForStmt(init=init, body=body):
            if isinstance(init, DeclStmt):
                yield from _stmts_in(init)
            yield from _stmts_in(body)
        case LabeledStmt(stmt=inner) | CaseStmt(stmt=inner):
            yield from _stmts_in(inner)
        case _:
            pass


def _exprs_in_stmt(stmt: CStmt) -> Iterator[CExpr]:
    """Top-level expressions of one statement (not recursing into
    sub-statements, which :func:`_stmts_in` already enumerates)."""
    match stmt:
        case ExprStmt(expr=expr):
            yield expr
        case DeclStmt(decls=decls):
            for decl in decls:
                if decl.init is not None:
                    yield decl.init
        case IfStmt(cond=cond) | WhileStmt(cond=cond) | DoWhileStmt(
            cond=cond
        ) | SwitchStmt(value=cond):
            yield cond
        case ForStmt(init=init, cond=cond, step=step):
            if init is not None and not isinstance(init, DeclStmt):
                yield init
            if cond is not None:
                yield cond
            if step is not None:
                yield step
        case ReturnStmt(value=value):
            if value is not None:
                yield value
        case CaseStmt(value=value):
            if value is not None:
                yield value
        case _:
            pass


def _owned_call_kind(
    e: CExpr, policy: LowerPolicy
) -> Optional[str]:
    """Resource kind when ``e`` is a fresh-allocation call, else None."""
    e = _strip(e)
    if isinstance(e, Call) and isinstance(e.func, Ident):
        callee = e.func.name
        kind = policy.allocators.get(callee)
        if kind is not None:
            return kind
        summary = policy.summaries.get(callee)
        if summary is not None and summary.returns_owned:
            return summary.returns_kind
    return None


def _mentions(e: CExpr, name: str) -> bool:
    return name in _idents_in(e)


class _LocalScan:
    """Decides whether a local always holds a value the function owns.

    A local qualifies when every definition is NULL or a fresh owned
    allocation, and no occurrence lets the value leave through another
    door: its address is never taken, it is never stored into memory or
    copied into another variable, and it is only passed to callees that
    demonstrably borrow.  Plain reads (conditions, arithmetic, loads
    and stores *through* it) are fine.
    """

    def __init__(self, name: str, policy: LowerPolicy) -> None:
        self.name = name
        self.policy = policy
        self.ok = True
        self.kinds: set[str] = set()
        self.defs = 0

    def note_def(self, value: CExpr) -> None:
        self.defs += 1
        if _is_null(value):
            return
        kind = _owned_call_kind(value, self.policy)
        if kind is None:
            self.ok = False
            return
        self.kinds.add(kind)
        # The defining call's own arguments may still mention the local
        # (e.g. realloc); scan them like any other expression.
        inner = _strip(value)
        if isinstance(inner, Call):
            self.check(inner)

    def _call_arg_ok(self, callee: Optional[str], index: int) -> bool:
        if callee is None:
            return False
        if callee in self.policy.releasers or callee in self.policy.allocators:
            return False
        if callee in self.policy.borrowers:
            return True
        summary = self.policy.summaries.get(callee)
        if summary is not None:
            if index < len(summary.params):
                return summary.params[index] == PARAM_BORROWS
            return False
        return False

    def check(self, e: CExpr) -> None:
        """Recursively flag disqualifying occurrences of the local."""
        if not self.ok:
            return
        match e:
            case Unary(op="&", operand=operand):
                target = _strip(operand)
                if isinstance(target, Ident) and target.name == self.name:
                    self.ok = False
                    return
                self.check(operand)
            case Unary(op=op, operand=operand):
                if op in ("++", "--"):
                    target = _strip(operand)
                    if isinstance(target, Ident) and target.name == self.name:
                        self.ok = False
                        return
                self.check(operand)
            case Call(func=func, args=args):
                callee = func.name if isinstance(func, Ident) else None
                if not isinstance(func, Ident):
                    self.check(func)
                for i, arg in enumerate(args):
                    if _mentions(arg, self.name) and not self._call_arg_ok(
                        callee, i
                    ):
                        self.ok = False
                        return
                    self.check(arg)
            case Assignment(op=op, target=target, value=value):
                t = _strip(target)
                if isinstance(t, Ident) and t.name == self.name:
                    if op != "=":
                        self.ok = False
                        return
                    self.note_def(value)
                    return
                # Writing the local's value anywhere else (another
                # variable, memory) hands the ownership away.
                if _mentions(value, self.name):
                    self.ok = False
                    return
                self.check(target)
                self.check(value)
            case Binary(left=left, right=right) | Comma(left=left, right=right):
                self.check(left)
                self.check(right)
            case Conditional(cond=cond, then=then, other=other):
                self.check(cond)
                self.check(then)
                self.check(other)
            case Member(base=base):
                self.check(base)
            case Index(base=base, index=index):
                self.check(base)
                self.check(index)
            case Cast(operand=operand):
                self.check(operand)
            case InitList(items=items):
                for item in items:
                    if _mentions(item, self.name):
                        self.ok = False
                        return
                    self.check(item)
            case _:
                pass


def _scan_local(
    name: str, fdef: FuncDef, policy: LowerPolicy
) -> Optional[str]:
    """Kind of the owned value ``name`` always holds, or None."""
    scan = _LocalScan(name, policy)
    declared = False
    for stmt in _stmts_in(fdef.body):
        if isinstance(stmt, DeclStmt):
            for decl in stmt.decls:
                if decl.name == name:
                    declared = True
                    if decl.init is not None:
                        scan.note_def(decl.init)
            continue
        if isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                returned = _strip(stmt.value)
                if isinstance(returned, Ident) and returned.name == name:
                    continue  # the sanctioned exit
                if _mentions(stmt.value, name):
                    return None
            continue
        for expr in _exprs_in_stmt(stmt):
            scan.check(expr)
            if not scan.ok:
                return None
    if not declared or not scan.ok or scan.defs == 0:
        return None
    if len(scan.kinds) != 1:
        return None
    return next(iter(scan.kinds))


def _infer_returns_owned(
    fdef: FuncDef, policy: LowerPolicy
) -> tuple[bool, str]:
    if not isinstance(fdef.ret, CPointer):
        return False, ""
    param_names = {p.name for p in fdef.params if p.name is not None}
    returns = [
        s
        for s in _stmts_in(fdef.body)
        if isinstance(s, ReturnStmt) and s.value is not None
    ]
    if not returns:
        return False, ""
    kinds: set[str] = set()
    local_kinds: dict[str, Optional[str]] = {}
    for ret in returns:
        value = _strip(ret.value) if ret.value is not None else None
        assert value is not None
        if _is_null(value):
            continue
        kind = _owned_call_kind(value, policy)
        if kind is not None:
            kinds.add(kind)
            continue
        if isinstance(value, Ident) and value.name not in param_names:
            if value.name not in local_kinds:
                local_kinds[value.name] = _scan_local(
                    value.name, fdef, policy
                )
            local_kind = local_kinds[value.name]
            if local_kind is None:
                return False, ""
            kinds.add(local_kind)
            continue
        return False, ""
    if len(kinds) != 1:
        return False, ""
    return True, next(iter(kinds))


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def infer_function_ownership(
    fdef: FuncDef,
    lattice: Optional[QualifierLattice] = None,
    policy: Optional[LowerPolicy] = None,
) -> Optional[OwnershipSummary]:
    """Summarise one function, or None when it cannot be summarised
    (unstructured control flow, lowering failure) — callers then keep
    the unknown-callee havoc.

    ``policy.summaries`` carries the already-computed summaries of this
    function's callees; the whole-program driver supplies them in
    bottom-up SCC order so helper chains compose.
    """
    from .lower import DEFAULT_POLICY

    pol = policy if policy is not None else DEFAULT_POLICY
    lat = lattice if lattice is not None else resource_lattice()
    try:
        fn = lower_function(fdef, lat, pol)
    except Exception:
        return None
    if fn.unstructured:
        return None
    owned, kind = _infer_returns_owned(fdef, pol)
    return OwnershipSummary(
        name=fdef.name,
        params=_param_verdicts(fdef, fn),
        returns_owned=owned,
        returns_kind=kind,
        file=fdef.file,
        line=fdef.line,
        col=fdef.col,
    )


def with_summaries(
    policy: LowerPolicy, summaries: Mapping[str, OwnershipSummary]
) -> LowerPolicy:
    """A policy whose call-site substitution consults ``summaries``."""
    return replace(policy, summaries=dict(summaries))
