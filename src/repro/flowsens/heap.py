"""Heap-cell layer for the flow-sensitive prototype.

Scalars in :mod:`repro.flowsens.analysis` are strongly updated per
program point.  Heap cells, reached through pointers that may alias, get
the dual treatment the Section 6 sketch prescribes for non-strong
updates: each allocation *site* has **one** flow-insensitive qualifier
variable, stores join values in (``value <= cell``), and loads read the
accumulated contents out.  A small flow-sensitive points-to map tracks
which sites each pointer variable may reference (strong updates on the
pointer variables themselves, set-union at merges, fixpoint over loop
back edges).

The result composes with the scalar layer: programs mix strongly-updated
locals and weakly-updated cells, which is exactly the shape of the
lclint workloads the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..qual.constraints import Origin, QualConstraint
from ..qual.lattice import LatticeElement, QualifierLattice
from ..qual.qtypes import Qual, QualVar, fresh_qual_var
from ..qual.solver import solve
from .analysis import CheckFailure, FlowError, FlowResult
from .language import (
    AnnotStmt,
    Assign,
    AssertStmt,
    Block,
    CopyPtr,
    ExitPoint,
    FlowExpr,
    FlowStmt,
    FreeCell,
    Havoc,
    If,
    Join,
    Literal,
    LoadCell,
    NewCell,
    Refine,
    StoreCell,
    UseCell,
    VarRef,
    While,
)

PointsTo = dict[str, frozenset[str]]


@dataclass
class _State:
    """Per-program-point environment: scalar types + points-to sets."""

    vals: dict[str, Qual] = field(default_factory=dict)
    ptrs: PointsTo = field(default_factory=dict)

    def copy(self) -> "_State":
        return _State(dict(self.vals), dict(self.ptrs))


class HeapFlowAnalysis:
    """Flow-sensitive scalars + flow-insensitive heap cells."""

    def __init__(self, lattice: QualifierLattice):
        self.lattice = lattice
        self.constraints: list[QualConstraint] = []
        self.checks: list[tuple[str, str, str, Qual, LatticeElement]] = []
        self.cell_vars: dict[str, QualVar] = {}

    # -- plumbing --------------------------------------------------------
    def _emit(
        self, lhs: Qual, rhs: Qual, reason: str, at: FlowStmt | None = None
    ) -> None:
        self.constraints.append(QualConstraint(lhs, rhs, self._origin(reason, at)))

    @staticmethod
    def _origin(reason: str, at: FlowStmt | None = None) -> Origin:
        """Origin for one constraint; statements lowered from C carry a
        span, so flow paths through lowered programs name file:line:col."""
        if at is not None and at.line:
            return Origin(reason, at.file or None, at.line, at.col or None)
        return Origin(reason)

    def cell(self, site: str) -> QualVar:
        if site not in self.cell_vars:
            self.cell_vars[site] = fresh_qual_var(f"cell_{site}_")
        return self.cell_vars[site]

    def _eval(self, expr: FlowExpr, state: _State) -> Qual:
        match expr:
            case VarRef(name=name):
                if name not in state.vals:
                    raise FlowError(f"use of undefined variable {name!r}")
                return state.vals[name]
            case Literal(qual=q):
                return q
            case Join(left=left, right=right):
                out = fresh_qual_var("join")
                self._emit(self._eval(left, state), out, "join-left")
                self._emit(self._eval(right, state), out, "join-right")
                return out
            case _:
                raise FlowError(f"unknown expression {expr!r}")

    def _sites_of(self, state: _State, pointer: str) -> frozenset[str]:
        if pointer not in state.ptrs:
            raise FlowError(f"{pointer!r} is not a pointer variable here")
        return state.ptrs[pointer]

    def _merge(self, a: _State, b: _State, reason: str) -> _State:
        out = _State()
        for name in set(a.vals) | set(b.vals):
            qa, qb = a.vals.get(name), b.vals.get(name)
            if qa is None or qb is None:
                out.vals[name] = qa if qa is not None else qb  # type: ignore[assignment]
            elif qa == qb:
                out.vals[name] = qa
            else:
                merged = fresh_qual_var("merge")
                self._emit(qa, merged, f"{reason}-left")
                self._emit(qb, merged, f"{reason}-right")
                out.vals[name] = merged
        for name in set(a.ptrs) | set(b.ptrs):
            out.ptrs[name] = a.ptrs.get(name, frozenset()) | b.ptrs.get(
                name, frozenset()
            )
        return out

    # -- transfer ---------------------------------------------------------
    def _stmt(self, stmt: FlowStmt, state: _State) -> _State:
        match stmt:
            case NewCell(target=p, site=site):
                self.cell(site)
                out = state.copy()
                out.ptrs[p] = frozenset({site})
                # The pointer variable's own value (the pointer itself)
                # is fresh and unconstrained — defined, so value packs
                # can mention p without tripping the undefined-use check.
                out.vals[p] = fresh_qual_var(f"{p}_ptr")
                return out

            case CopyPtr(target=q, source=p):
                sites = self._sites_of(state, p)
                out = state.copy()
                out.ptrs[q] = sites
                # q's value IS p's value (the copied pointer), so value
                # qualifiers riding the pointer itself follow the copy.
                copied = state.vals.get(p)
                out.vals[q] = (
                    copied if copied is not None else fresh_qual_var(f"{q}_ptr")
                )
                return out

            case StoreCell(pointer=p, value=value):
                stored = self._eval(value, state)
                for site in self._sites_of(state, p):
                    # weak update: the value joins the cell's contents
                    self._emit(stored, self.cell(site), f"store into {site}", stmt)
                return state

            case LoadCell(target=x, pointer=p):
                loaded = fresh_qual_var(f"{x}_load")
                for site in self._sites_of(state, p):
                    self._emit(self.cell(site), loaded, f"load from {site}", stmt)
                out = state.copy()
                out.vals[x] = loaded
                out.ptrs.pop(x, None)
                return out

            case Assign(target=x, value=value):
                rhs = self._eval(value, state)
                after = fresh_qual_var(f"{x}_")
                self._emit(rhs, after, f"assign {x}", stmt)
                out = state.copy()
                out.vals[x] = after
                out.ptrs.pop(x, None)
                return out

            case FreeCell() | UseCell() | ExitPoint():
                # Resource events: meaningful only to the linearity pack
                # (:class:`repro.flowsens.linear.ResourceAnalysis`), which
                # overrides them.  Generic qualifier packs flow straight
                # through, so any pack can analyze lowered C programs.
                return state

            case Havoc(target=x):
                out = state.copy()
                out.vals[x] = fresh_qual_var(f"{x}_any")
                return out

            case AnnotStmt(target=x, level=level):
                if x not in state.vals:
                    raise FlowError(f"annot of undefined variable {x!r}")
                self.checks.append(("annot", x, stmt.label, state.vals[x], level))
                out = state.copy()
                out.vals[x] = level
                return out

            case AssertStmt(target=x, level=level):
                if x not in state.vals:
                    raise FlowError(f"assert of undefined variable {x!r}")
                self.checks.append(("assert", x, stmt.label, state.vals[x], level))
                return state

            case Refine(target=x, qualifier=q, body=body):
                if x not in state.vals:
                    raise FlowError(f"refinement of undefined variable {x!r}")
                inner = state.copy()
                inner.vals[x] = self.lattice.assertion_bound(q)
                exit_state = self._block(body, inner)
                return self._merge(state, exit_state, f"refine-{x}-merge")

            case If(cond=cond, then=then, else_=else_):
                if cond not in state.vals and cond not in state.ptrs:
                    raise FlowError(f"branch on undefined variable {cond!r}")
                then_state = self._block(then, state.copy())
                else_state = self._block(else_, state.copy())
                return self._merge(then_state, else_state, "if-merge")

            case While(cond=cond, body=body):
                if cond not in state.vals and cond not in state.ptrs:
                    raise FlowError(f"loop on undefined variable {cond!r}")
                # points-to fixpoint: iterate until the head's sets are
                # stable (bounded by the number of sites).
                head = state.copy()
                for name, qual in state.vals.items():
                    hv = fresh_qual_var(f"{name}_loop")
                    self._emit(qual, hv, "loop-entry")
                    head.vals[name] = hv
                while True:
                    trial = self._block(body, head.copy())
                    grown = False
                    for name, sites in trial.ptrs.items():
                        old = head.ptrs.get(name, frozenset())
                        if name in head.ptrs and not sites <= old:
                            head.ptrs[name] = old | sites
                            grown = True
                    if not grown:
                        break
                exit_state = self._block(body, head.copy())
                for name, hv in head.vals.items():
                    if name in exit_state.vals and exit_state.vals[name] != hv:
                        self._emit(exit_state.vals[name], hv, "loop-back-edge")
                return head

            case _:
                raise FlowError(f"unknown statement {stmt!r}")

    def _block(self, stmts: Block, state: _State) -> _State:
        for stmt in stmts:
            state = self._stmt(stmt, state)
        return state

    # -- entry point ------------------------------------------------------
    def analyze(
        self,
        program: Block,
        initial: dict[str, LatticeElement] | None = None,
    ) -> FlowResult:
        vals: dict[str, Qual] = dict(initial or {})
        state = _State(vals, {})
        final = self._block(program, state)

        mentioned = [
            q for _k, _x, _l, q, _r in self.checks if isinstance(q, QualVar)
        ]
        mentioned.extend(self.cell_vars.values())
        solution = solve(self.constraints, self.lattice, extra_vars=mentioned)

        failures = []
        points = []
        for kind, variable, label, qual, required in self.checks:
            actual = (
                solution.least_of(qual) if isinstance(qual, QualVar) else qual
            )
            points.append((kind, label, variable, qual))
            if not self.lattice.leq(actual, required):
                failures.append(
                    CheckFailure(kind, variable, required, actual, label)
                )
        return FlowResult(self.lattice, solution, failures, final.vals, points)


def analyze_heap_flow(
    program: Block,
    lattice: QualifierLattice,
    initial: dict[str, LatticeElement] | None = None,
) -> FlowResult:
    """Run the combined scalar+heap flow-sensitive analysis."""
    return HeapFlowAnalysis(lattice).analyze(program, initial)
