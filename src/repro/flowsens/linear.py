"""Linearity / resource-tracking pack over the flow-sensitive engine.

This is the use-exactly-once qualifier instance the paper's Section 6
machinery was built to support: allocations incur an obligation
(``alloc``), frees discharge it (``released``) and poison the variable
(``freed``), and three checks fall out of the least solution:

* **double-free** — a :class:`FreeCell` whose operand may already be
  ``freed``;
* **use-after-free** — a :class:`UseCell` whose operand may be
  ``freed``;
* **resource-leak** — an :class:`ExitPoint` where some local may still
  hold ``alloc`` without being definitely ``released`` (the negative
  polarity of ``released`` makes the must-information die at merges,
  which is exactly leak-*on-this-exit-path* detection).

Strong updates do the heavy lifting: ``free(p)`` replaces ``p``'s
qualifier variable outright (the paper's flow-sensitive proposal), while
may-aliases discovered through the points-to map receive weak updates
(``freed`` joins in, the old value survives).

Everything here is engine-side: findings are plain data with source
spans and shortest-flow-path steps; :mod:`repro.checker` adapts them to
diagnostics.  This module must not import the checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..qual.constraints import QualConstraint
from ..qual.lattice import LatticeElement, QualifierLattice
from ..qual.qtypes import Qual, QualVar, fresh_qual_var
from ..qual.qualifiers import resource_lattice
from ..qual.solver import Solution, shortest_flow_path, solve
from .analysis import FlowError
from .heap import HeapFlowAnalysis, _State
from .language import (
    CallVia,
    CopyPtr,
    ExitPoint,
    FlowStmt,
    FreeCell,
    Havoc,
    If,
    NewCell,
    UseCell,
    While,
)
from .lower import LoweredFunction


def _via_stmt(via: CallVia) -> FlowStmt:
    """A synthetic statement carrying the callee's definition span, so
    summary-substituted events anchor one flow step in the defining
    unit (the cross-file half of a cross-TU finding)."""
    return FlowStmt(line=via.line, col=via.col, file=via.file)

#: check names, shared with the checker's registry
DOUBLE_FREE = "double-free"
USE_AFTER_FREE = "use-after-free"
RESOURCE_LEAK = "resource-leak"


@dataclass(frozen=True)
class FlowPathStep:
    """One step of a finding's flow path (engine-side, checker-free)."""

    note: str
    file: str
    line: int
    col: int


@dataclass(frozen=True)
class ResourceFinding:
    """One resource-safety violation in a lowered function."""

    kind: str
    variable: str
    function: str
    file: str
    line: int
    col: int
    #: shortest constraint path from the violating event to the site,
    #: ending with the site itself.
    flow: tuple[FlowPathStep, ...]


@dataclass(frozen=True)
class ResourceEvidence:
    """Why the suggestion mode believes a variable deserves ``alloc``."""

    variable: str
    qualifier: str
    #: steps in the shortest flow path from the allocation event
    path_length: int
    #: number of constraints flowing into the variable's qualifier vars
    fan_in: int
    file: str
    line: int
    col: int


@dataclass
class ResourceReport:
    """Findings plus per-variable evidence for one lowered function."""

    function: LoweredFunction
    findings: list[ResourceFinding]
    #: joined element over every value each variable held
    var_elements: dict[str, LatticeElement]
    evidence: dict[str, ResourceEvidence]


_Obligation = tuple[str, str, Qual, FlowStmt]


class ResourceAnalysis(HeapFlowAnalysis):
    """The heap analysis plus resource-event semantics.

    ``NewCell`` at a recorded allocation site seeds ``alloc``;
    ``FreeCell`` records a double-free obligation, then strongly
    updates the operand (and weakly updates may-aliases); ``UseCell``
    and ``ExitPoint`` record use-after-free and leak obligations.
    Obligations are checked against the least solution *after* the
    one solver pass, like every other check in the framework.
    """

    def __init__(
        self, fn: LoweredFunction, lattice: QualifierLattice | None = None
    ) -> None:
        super().__init__(lattice or resource_lattice())
        self.fn = fn
        self._alloc_el = self.lattice.element("alloc")
        self._freed_strong = self.lattice.element("freed", "released")
        self._freed_weak = self.lattice.element("freed")
        #: off during loop fixpoint trials so each event records once
        self._recording = True
        self.obligations: list[_Obligation] = []
        #: every qualifier variable each source variable ever held
        self.history: dict[str, list[Qual]] = {}

    def _remember(self, var: str, qual: Qual) -> None:
        if self._recording:
            self.history.setdefault(var, []).append(qual)

    def _oblige(self, kind: str, var: str, qual: Qual, at: FlowStmt) -> None:
        if self._recording:
            self.obligations.append((kind, var, qual, at))

    def _stmt(self, stmt: FlowStmt, state: _State) -> _State:
        match stmt:
            case NewCell(target=p, site=site):
                out = super()._stmt(stmt, state)
                info = self.fn.alloc_sites.get(site)
                if info is not None:
                    seeded = fresh_qual_var(f"{p}_alloc")
                    if stmt.via is not None:
                        # Substituted from an ownership summary: chain
                        # through the callee's definition so the flow
                        # path steps into the defining unit.
                        mid = fresh_qual_var(f"{p}_viaalloc")
                        self._emit(
                            self._alloc_el,
                            mid,
                            f"{stmt.via.callee} returns a fresh allocation",
                            _via_stmt(stmt.via),
                        )
                        self._emit(
                            mid,
                            seeded,
                            f"{p} receives allocation from {info.callee}",
                            stmt,
                        )
                    else:
                        self._emit(
                            self._alloc_el,
                            seeded,
                            f"{p} receives allocation from {info.callee}",
                            stmt,
                        )
                    out.vals[p] = seeded
                    self._remember(p, seeded)
                return out

            case CopyPtr(target=q):
                out = super()._stmt(stmt, state)
                copied = out.vals.get(q)
                if copied is not None:
                    self._remember(q, copied)
                return out

            case FreeCell(pointer=p):
                out = state.copy()
                current = state.vals.get(p)
                if current is not None:
                    self._oblige(DOUBLE_FREE, p, current, stmt)
                # Strong update: p definitely holds the freed value now.
                freed = fresh_qual_var(f"{p}_freed")
                if stmt.via is not None:
                    mid = fresh_qual_var(f"{p}_viafree")
                    self._emit(
                        self._freed_strong,
                        mid,
                        f"{stmt.via.callee} frees its argument",
                        _via_stmt(stmt.via),
                    )
                    self._emit(
                        mid,
                        freed,
                        f"{p} is passed to {stmt.via.callee} here",
                        stmt,
                    )
                else:
                    self._emit(
                        self._freed_strong, freed, f"{p} is freed here", stmt
                    )
                out.vals[p] = freed
                self._remember(p, freed)
                # Aliases: a pointer sharing exactly p's one points-to
                # site must alias it (strong update); overlapping sets
                # only may alias (weak update: freed joins in).
                sites = state.ptrs.get(p, frozenset())
                if sites:
                    for q2, qsites in state.ptrs.items():
                        if q2 == p or not (qsites & sites):
                            continue
                        if qsites == sites and len(sites) == 1:
                            out.vals[q2] = freed
                        else:
                            weak = fresh_qual_var(f"{q2}_mayfreed")
                            old = state.vals.get(q2)
                            if old is not None:
                                self._emit(
                                    old, weak, f"{q2} may survive free", stmt
                                )
                            self._emit(
                                self._freed_weak,
                                weak,
                                f"{q2} may alias freed {p}",
                                stmt,
                            )
                            out.vals[q2] = weak
                        self._remember(q2, out.vals[q2])
                return out

            case UseCell(pointer=p):
                current = state.vals.get(p)
                if current is not None:
                    self._oblige(USE_AFTER_FREE, p, current, stmt)
                return state

            case ExitPoint():
                for var in sorted(self.fn.pointer_vars):
                    current = state.vals.get(var)
                    if current is not None:
                        self._oblige(RESOURCE_LEAK, var, current, stmt)
                return state

            case Havoc(target=x):
                # An escape also covers copies sharing the same value:
                # if x's allocation is now owned elsewhere, so is the
                # identical value held by any CopyPtr'd alias.
                shared = state.vals.get(x)
                out = super()._stmt(stmt, state)
                if shared is not None and isinstance(shared, QualVar):
                    for y, v in state.vals.items():
                        if y != x and v is shared:
                            out.vals[y] = fresh_qual_var(f"{y}_any")
                return out

            case While(cond=cond, body=body):
                if cond not in state.vals and cond not in state.ptrs:
                    raise FlowError(
                        f"loop on undefined variable {cond!r}"
                    )
                head = state.copy()
                for name, qual in state.vals.items():
                    hv = fresh_qual_var(f"{name}_loop")
                    self._emit(qual, hv, "loop-entry", stmt)
                    head.vals[name] = hv
                # Points-to fixpoint trials must not double-record
                # obligations; only the final pass observes events.
                was = self._recording
                self._recording = False
                try:
                    while True:
                        trial = self._block(body, head.copy())
                        grown = False
                        for name, sites in trial.ptrs.items():
                            old = head.ptrs.get(name, frozenset())
                            if name in head.ptrs and not sites <= old:
                                head.ptrs[name] = old | sites
                                grown = True
                        if not grown:
                            break
                finally:
                    self._recording = was
                exit_state = self._block(body, head.copy())
                for name, hv in head.vals.items():
                    if name in exit_state.vals and exit_state.vals[name] != hv:
                        self._emit(
                            exit_state.vals[name], hv, "loop-back-edge", stmt
                        )
                return head

            case _:
                return super()._stmt(stmt, state)


def _final_note(kind: str, var: str) -> str:
    if kind == DOUBLE_FREE:
        return f"{var} freed again here"
    if kind == USE_AFTER_FREE:
        return f"{var} used here"
    return f"function exits with {var} still holding the allocation"


def _violates(kind: str, least: LatticeElement) -> bool:
    if kind == RESOURCE_LEAK:
        return least.has("alloc") and not least.has("released")
    return least.has("freed")


def analyze_lowered(
    fn: LoweredFunction, lattice: QualifierLattice | None = None
) -> ResourceReport:
    """Run the resource pack over one lowered function."""
    analysis = ResourceAnalysis(fn, lattice)
    final = analysis._block(fn.body, _State())
    del final

    extra: list[QualVar] = [
        q for (_k, _v, q, _a) in analysis.obligations if isinstance(q, QualVar)
    ]
    for quals in analysis.history.values():
        extra.extend(q for q in quals if isinstance(q, QualVar))
    extra.extend(analysis.cell_vars.values())
    solution = solve(analysis.constraints, analysis.lattice, extra_vars=extra)

    findings = _evaluate(analysis, solution)
    var_elements, evidence = _evidence(analysis, solution)
    return ResourceReport(
        function=fn,
        findings=findings,
        var_elements=var_elements,
        evidence=evidence,
    )


def _least(solution: Solution, qual: Qual) -> LatticeElement:
    if isinstance(qual, QualVar):
        return solution.least_of(qual)
    assert isinstance(qual, LatticeElement)
    return qual


def _evaluate(
    analysis: ResourceAnalysis, solution: Solution
) -> list[ResourceFinding]:
    lattice = analysis.lattice
    bounds = {
        DOUBLE_FREE: lattice.top.without_qualifier("freed"),
        USE_AFTER_FREE: lattice.top.without_qualifier("freed"),
        RESOURCE_LEAK: lattice.top.without_qualifier("alloc"),
    }
    findings: list[ResourceFinding] = []
    seen: set[tuple[str, str, int, int]] = set()
    for kind, var, qual, at in analysis.obligations:
        least = _least(solution, qual)
        if not _violates(kind, least):
            continue
        key = (kind, var, at.line, at.col)
        if key in seen:
            continue
        seen.add(key)
        flow: list[FlowPathStep] = []
        if isinstance(qual, QualVar):
            path = shortest_flow_path(
                analysis.constraints, lattice, qual, bounds[kind]
            )
            if path:
                flow = [_path_step(c) for c in path]
        flow.append(
            FlowPathStep(
                _final_note(kind, var),
                at.file or analysis.fn.file,
                at.line,
                at.col,
            )
        )
        findings.append(
            ResourceFinding(
                kind=kind,
                variable=var,
                function=analysis.fn.name,
                file=at.file or analysis.fn.file,
                line=at.line,
                col=at.col,
                flow=tuple(flow),
            )
        )
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.kind, f.variable))
    return findings


def _path_step(constraint: QualConstraint) -> FlowPathStep:
    origin = constraint.origin
    return FlowPathStep(
        origin.reason,
        origin.filename or "",
        origin.line or 0,
        origin.column or 0,
    )


def _evidence(
    analysis: ResourceAnalysis, solution: Solution
) -> tuple[dict[str, LatticeElement], dict[str, ResourceEvidence]]:
    lattice = analysis.lattice
    alloc_bound = lattice.top.without_qualifier("alloc")
    var_elements: dict[str, LatticeElement] = {}
    evidence: dict[str, ResourceEvidence] = {}
    fan_in: dict[Qual, int] = {}
    for c in analysis.constraints:
        fan_in[c.rhs] = fan_in.get(c.rhs, 0) + 1
    for var, quals in analysis.history.items():
        joined = lattice.bottom
        best_path: int | None = None
        total_fan_in = 0
        for q in quals:
            least = _least(solution, q)
            joined = lattice.join(joined, least)
            total_fan_in += fan_in.get(q, 0)
            if least.has("alloc") and isinstance(q, QualVar):
                path = shortest_flow_path(
                    analysis.constraints, lattice, q, alloc_bound
                )
                if path is not None and (
                    best_path is None or len(path) < best_path
                ):
                    best_path = len(path)
        var_elements[var] = joined
        if joined.has("alloc"):
            site = _first_event(analysis.fn, var)
            evidence[var] = ResourceEvidence(
                variable=var,
                qualifier="alloc",
                path_length=best_path if best_path is not None else 1,
                fan_in=total_fan_in,
                file=site[0],
                line=site[1],
                col=site[2],
            )
    return var_elements, evidence


def _first_event(fn: LoweredFunction, var: str) -> tuple[str, int, int]:
    def scan(stmts: tuple[FlowStmt, ...]) -> tuple[str, int, int] | None:
        for s in stmts:
            if isinstance(s, NewCell) and s.target == var:
                if s.site in fn.alloc_sites:
                    info = fn.alloc_sites[s.site]
                    return (info.file, info.line, info.col)
            if isinstance(s, While):
                found = scan(s.body)
                if found:
                    return found
            if isinstance(s, If):
                found = scan(s.then) or scan(s.else_)
                if found:
                    return found
        return None

    hit = scan(fn.body)
    return hit if hit is not None else (fn.file, fn.line, fn.col)


def analyze_function_resources(
    fn: LoweredFunction, lattice: QualifierLattice | None = None
) -> list[ResourceFinding]:
    """Findings for one lowered function; empty when unstructured."""
    if fn.unstructured:
        return []
    try:
        return analyze_lowered(fn, lattice).findings
    except FlowError:
        # A lowering shape the engine cannot analyze: best-effort means
        # we skip the function rather than fail the unit.
        return []
