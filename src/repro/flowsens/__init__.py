"""Flow-sensitive type qualifiers — the paper's Section 6 proposal,
prototyped.

The base framework gives each location one qualified type for the whole
program; lclint-style checking needs qualifiers that vary per program
point.  This package implements the paper's sketched solution: a
distinct qualifier variable per location per point, with subtyping
constraints between adjacent points except across strong updates.

* :mod:`repro.flowsens.language` — the small imperative language
  (assignments, havoc, annotations/assertions, conditional refinement,
  branches, loops).
* :mod:`repro.flowsens.analysis` — the constraint-based forward
  analysis, solved with the unchanged atomic solver.
* :mod:`repro.flowsens.heap` — the weak-update half: flow-insensitive
  heap cells behind a small flow-sensitive points-to map.
* :mod:`repro.flowsens.lower` — best-effort lowering from cfront
  function bodies into this language (pointer events, branches, loops,
  havoc for everything unsupported).
* :mod:`repro.flowsens.linear` — the linearity/resource pack: alloc/
  freed qualifier tracking with strong updates, detecting double-free,
  use-after-free, and leak-on-exit-path with flow-path diagnostics.
"""

from .analysis import (
    CheckFailure,
    FlowAnalysis,
    FlowError,
    FlowResult,
    analyze_flow,
)
from .heap import HeapFlowAnalysis, analyze_heap_flow
from .language import (
    AnnotStmt,
    Assign,
    AssertStmt,
    Block,
    CallVia,
    CopyPtr,
    ExitPoint,
    FlowExpr,
    FlowStmt,
    FreeCell,
    Havoc,
    If,
    Join,
    Literal,
    LoadCell,
    NewCell,
    Refine,
    StoreCell,
    UseCell,
    VarRef,
    While,
    block,
)
from .linear import (
    DOUBLE_FREE,
    RESOURCE_LEAK,
    USE_AFTER_FREE,
    FlowPathStep,
    ResourceAnalysis,
    ResourceEvidence,
    ResourceFinding,
    ResourceReport,
    analyze_function_resources,
    analyze_lowered,
)
from .lower import (
    DEFAULT_POLICY,
    AllocSite,
    LoweredFunction,
    LowerPolicy,
    lower_function,
)
from .ownership import (
    PARAM_BORROWS,
    PARAM_ESCAPES,
    PARAM_FREES,
    OwnershipSummary,
    escaping_summary,
    infer_function_ownership,
    join_summaries,
    with_summaries,
)

__all__ = [name for name in dir() if not name.startswith("_")]
