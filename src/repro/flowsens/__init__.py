"""Flow-sensitive type qualifiers — the paper's Section 6 proposal,
prototyped.

The base framework gives each location one qualified type for the whole
program; lclint-style checking needs qualifiers that vary per program
point.  This package implements the paper's sketched solution: a
distinct qualifier variable per location per point, with subtyping
constraints between adjacent points except across strong updates.

* :mod:`repro.flowsens.language` — the small imperative language
  (assignments, havoc, annotations/assertions, conditional refinement,
  branches, loops).
* :mod:`repro.flowsens.analysis` — the constraint-based forward
  analysis, solved with the unchanged atomic solver.
* :mod:`repro.flowsens.heap` — the weak-update half: flow-insensitive
  heap cells behind a small flow-sensitive points-to map.
"""

from .analysis import (
    CheckFailure,
    FlowAnalysis,
    FlowError,
    FlowResult,
    analyze_flow,
)
from .heap import HeapFlowAnalysis, analyze_heap_flow
from .language import (
    AnnotStmt,
    Assign,
    AssertStmt,
    Block,
    CopyPtr,
    FlowExpr,
    FlowStmt,
    Havoc,
    If,
    Join,
    Literal,
    LoadCell,
    NewCell,
    Refine,
    StoreCell,
    VarRef,
    While,
    block,
)

__all__ = [name for name in dir() if not name.startswith("_")]
