"""A small imperative language for flow-sensitive qualifiers (Section 6).

The paper's framework is flow-*insensitive*: a location has one
qualified type for the whole program, which is why lclint-style
"annotations on a given location may vary at each program point" cannot
be expressed (Section 6).  The paper sketches the fix:

    "One solution we are investigating is to assign each location a
    distinct type at every program point and to add subtyping
    constraints between the different types.  [...] if s does not
    perform a strong update of x we add the constraint tau1 <= tau2; if
    s does strongly update x then we do not add this constraint."

This package prototypes exactly that proposal over a deliberately small
imperative language of qualified scalar cells:

* ``Assign(x, rhs)`` — **strong update**: x's type after the statement
  comes from the right-hand side alone;
* ``Touch(x)`` / any statement not updating x — **weak**: the type flows
  through (``before <= after``);
* ``AnnotStmt(x, l)`` — raise x's qualifier (checked, like ``l e``);
* ``AssertStmt(x, l)`` — check x's qualifier at this point (``e|l``);
* ``Refine(x, q, body)`` — a *conditional refinement*: inside ``body``,
  x is known to satisfy qualifier ``q``'s restrictive reading (the
  lclint null-test pattern: ``if (x != NULL) { ... }``).  This is a
  strong update at the branch entry;
* ``If(cond_var, then, else_)`` — both branch-exit types flow into the
  merge point (weak);
* ``While(cond_var, body)`` — body-exit types flow back to the loop
  head (weak, a fixpoint the atomic solver handles natively);
* ``Havoc(x)`` — x receives an arbitrary (unconstrained) value, e.g. an
  external input.

Expressions are variables, qualified literals, or ``Join(a, b)`` (a
value that may be either operand, e.g. the result of a binary op).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..qual.lattice import LatticeElement


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarRef:
    """The current value of a variable."""

    name: str


@dataclass(frozen=True)
class Literal:
    """A constant with a known qualifier."""

    qual: LatticeElement


@dataclass(frozen=True)
class Join:
    """A value that may come from either operand (binary operations,
    conditional expressions)."""

    left: "FlowExpr"
    right: "FlowExpr"


FlowExpr = Union[VarRef, Literal, Join]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlowStmt:
    label: str = field(default="", kw_only=True, compare=False)
    #: Optional source span for statements lowered from real C
    #: (:mod:`repro.flowsens.lower`); zero/empty when hand-written.
    #: Carried into constraint origins so flow paths name file:line:col.
    line: int = field(default=0, kw_only=True, compare=False)
    col: int = field(default=0, kw_only=True, compare=False)
    file: str = field(default="", kw_only=True, compare=False)


@dataclass(frozen=True)
class Assign(FlowStmt):
    """``x = e`` — a strong update of x."""

    target: str
    value: FlowExpr


@dataclass(frozen=True)
class AnnotStmt(FlowStmt):
    """Raise x's qualifier to at least ``level`` (checked monotone)."""

    target: str
    level: LatticeElement


@dataclass(frozen=True)
class AssertStmt(FlowStmt):
    """Check x's qualifier is at most ``level`` at this point."""

    target: str
    level: LatticeElement


@dataclass(frozen=True)
class Refine(FlowStmt):
    """Run ``body`` under the assumption that ``target`` satisfies
    qualifier ``qualifier``'s restrictive reading — the null-check /
    zero-check conditional pattern.  Strong update at branch entry;
    the refined type does NOT survive past the body (the general value
    flows to the merge like an else-branch would)."""

    target: str
    qualifier: str
    body: tuple[FlowStmt, ...]


@dataclass(frozen=True)
class If(FlowStmt):
    """Branch on ``cond`` (no refinement); merge joins both sides."""

    cond: str
    then: tuple[FlowStmt, ...]
    else_: tuple[FlowStmt, ...] = ()


@dataclass(frozen=True)
class While(FlowStmt):
    """Loop on ``cond``; the body's exit state flows back to the head."""

    cond: str
    body: tuple[FlowStmt, ...]


@dataclass(frozen=True)
class Havoc(FlowStmt):
    """``x`` receives an unknown value (external input)."""

    target: str


# ---------------------------------------------------------------------------
# Heap cells: the weak-update half of the Section 6 sketch.
#
# Locals are strongly updated (each assignment starts a fresh type); heap
# cells reached through pointers may be aliased, so stores are *weak*:
# the stored value joins into the cell's single, flow-insensitive type.
# This is exactly the paper's distinction — "if s does not perform a
# strong update of x we add the constraint tau1 <= tau2".
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NewCell(FlowStmt):
    """``p = alloc(site)``: p points to the (one) cell of this site."""

    target: str
    site: str
    #: Set when the allocation was substituted from a callee's
    #: "returns owned" ownership summary (:mod:`repro.flowsens.ownership`).
    via: "CallVia | None" = field(default=None, kw_only=True)


@dataclass(frozen=True)
class StoreCell(FlowStmt):
    """``*p = e`` — weak update: the value joins the cell's contents."""

    pointer: str
    value: FlowExpr


@dataclass(frozen=True)
class LoadCell(FlowStmt):
    """``x = *p`` — strong update of x with the cell's contents."""

    target: str
    pointer: str


@dataclass(frozen=True)
class CopyPtr(FlowStmt):
    """``q = p`` — q aliases whatever p points to."""

    target: str
    source: str


# ---------------------------------------------------------------------------
# Resource events: interpreted by the linearity pack
# (:mod:`repro.flowsens.linear`); the generic analyses treat them as
# no-ops so any qualifier pack can run over lowered C programs.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallVia:
    """Provenance of a resource event that was *substituted* from a
    callee's ownership summary (:mod:`repro.flowsens.ownership`): the
    callee's name and definition span.  The linearity pack threads it
    into the flow path so a cross-TU finding names both the call site
    and the callee's defining unit."""

    callee: str
    file: str
    line: int
    col: int


@dataclass(frozen=True)
class FreeCell(FlowStmt):
    """``free(p)`` — the resource held by ``p`` (and its must-aliases)
    is released.  Generic analyses ignore it."""

    pointer: str
    #: Set when the free was substituted from a callee's ownership
    #: summary rather than a direct releaser call.
    via: "CallVia | None" = field(default=None, kw_only=True)


@dataclass(frozen=True)
class UseCell(FlowStmt):
    """``p`` is observed (dereferenced, passed to a borrowing callee,
    returned).  The linearity pack checks use-after-free here; generic
    analyses ignore it."""

    pointer: str


@dataclass(frozen=True)
class ExitPoint(FlowStmt):
    """A function exit (``return`` or falling off the end).  The
    linearity pack checks leak obligations for every live local here;
    generic analyses ignore it."""


Block = tuple[FlowStmt, ...]


def block(*stmts: FlowStmt) -> Block:
    return tuple(stmts)
