"""Flow-sensitive qualifier inference (the Section 6 proposal).

Every variable gets a *distinct* qualifier variable at every program
point.  Statements relate adjacent points:

* a statement that does not strongly update ``x`` links ``x``'s types
  with ``before <= after``;
* a strong update (assignment, havoc, refinement) starts a fresh
  variable with no inflow from the old one;
* control-flow merges join (``<=`` into a fresh merge variable), and
  loop back edges flow into the loop-head variable — the atomic solver's
  fixpoint handles the cycle directly.

The result is a classic forward dataflow analysis, obtained purely by
constraint generation over the existing :mod:`repro.qual.solver` — no
new solving machinery, which is the point of the paper's sketch.

Assertions are evaluated as a *linter*: the system is solved without
them and every check is then reported against the least solution (the
join of the values actually flowing to that point), so a single run
reports all violations instead of stopping at the first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..qual.constraints import Origin, QualConstraint
from ..qual.lattice import LatticeElement, QualifierLattice
from ..qual.qtypes import Qual, QualVar, fresh_qual_var
from ..qual.solver import Solution, solve
from .language import (
    AnnotStmt,
    Assign,
    AssertStmt,
    Block,
    FlowExpr,
    FlowStmt,
    Havoc,
    If,
    Join,
    Literal,
    Refine,
    VarRef,
    While,
)


class FlowError(Exception):
    """Malformed flow program (e.g. use of an undefined variable)."""


@dataclass(frozen=True)
class CheckFailure:
    """One assertion that does not hold at its program point."""

    kind: str  # "assert" or "annot"
    variable: str
    required: LatticeElement
    actual: LatticeElement
    label: str

    def __str__(self) -> str:
        where = f" [{self.label}]" if self.label else ""
        return (
            f"{self.kind} on {self.variable}{where}: value {self.actual} "
            f"is not below {self.required}"
        )


@dataclass
class FlowResult:
    """Solved flow-sensitive analysis of one program."""

    lattice: QualifierLattice
    solution: Solution
    failures: list[CheckFailure]
    final_env: dict[str, Qual]
    #: the qualifier variable checked by each assert, in program order,
    #: keyed by (kind, label) for inspection in tests.
    check_points: list[tuple[str, str, str, Qual]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def value_of(self, qual: Qual) -> LatticeElement:
        if isinstance(qual, QualVar):
            return self.solution.least_of(qual)
        return qual

    def final_value(self, variable: str) -> LatticeElement:
        """Least solution of a variable's type at program exit."""
        if variable not in self.final_env:
            raise FlowError(f"unknown variable {variable!r}")
        return self.value_of(self.final_env[variable])


class FlowAnalysis:
    """Forward flow-sensitive qualifier analysis over a fixed lattice."""

    def __init__(self, lattice: QualifierLattice):
        self.lattice = lattice
        self.constraints: list[QualConstraint] = []
        #: (kind, variable, label, qual at the point, required bound)
        self.checks: list[tuple[str, str, str, Qual, LatticeElement]] = []

    # -- helpers ---------------------------------------------------------
    def _emit(self, lhs: Qual, rhs: Qual, reason: str) -> None:
        self.constraints.append(QualConstraint(lhs, rhs, Origin(reason)))

    def _eval(self, expr: FlowExpr, env: dict[str, Qual]) -> Qual:
        match expr:
            case VarRef(name=name):
                if name not in env:
                    raise FlowError(f"use of undefined variable {name!r}")
                return env[name]
            case Literal(qual=q):
                if q.lattice != self.lattice:
                    raise FlowError(f"literal {q} is not from lattice {self.lattice}")
                return q
            case Join(left=left, right=right):
                out = fresh_qual_var("join")
                self._emit(self._eval(left, env), out, "join-left")
                self._emit(self._eval(right, env), out, "join-right")
                return out
            case _:  # pragma: no cover - exhaustive
                raise FlowError(f"unknown expression {expr!r}")

    def _merge(
        self, a: dict[str, Qual], b: dict[str, Qual], reason: str
    ) -> dict[str, Qual]:
        """Join two environments: fresh merge variables where they differ."""
        out: dict[str, Qual] = {}
        for name in set(a) | set(b):
            qa, qb = a.get(name), b.get(name)
            if qa is None or qb is None:
                # defined on one path only: conservative, keep the one
                # that exists (uses on the other path would be errors).
                out[name] = qa if qa is not None else qb  # type: ignore[assignment]
                continue
            if qa == qb:
                out[name] = qa
                continue
            merged = fresh_qual_var("merge")
            self._emit(qa, merged, f"{reason}-left")
            self._emit(qb, merged, f"{reason}-right")
            out[name] = merged
        return out

    # -- statement transfer ------------------------------------------------
    def _stmt(self, stmt: FlowStmt, env: dict[str, Qual]) -> dict[str, Qual]:
        match stmt:
            case Assign(target=x, value=rhs):
                value = self._eval(rhs, env)
                after = fresh_qual_var(f"{x}_")
                self._emit(value, after, f"assign {x}")
                return {**env, x: after}  # strong update: no old inflow

            case Havoc(target=x):
                return {**env, x: fresh_qual_var(f"{x}_any")}

            case AnnotStmt(target=x, level=level):
                if x not in env:
                    raise FlowError(f"annot of undefined variable {x!r}")
                self.checks.append(("annot", x, stmt.label, env[x], level))
                # (Annot): the type at this point becomes exactly l.
                return {**env, x: level}

            case AssertStmt(target=x, level=level):
                if x not in env:
                    raise FlowError(f"assert of undefined variable {x!r}")
                self.checks.append(("assert", x, stmt.label, env[x], level))
                return env

            case Refine(target=x, qualifier=q, body=body):
                if x not in env:
                    raise FlowError(f"refinement of undefined variable {x!r}")
                # Branch entry strong-updates x to the join of all values
                # satisfying the test — sound, and exact on the tested
                # coordinate.
                refined = self.lattice.assertion_bound(q)
                inner = {**env, x: refined}
                exit_env = self._block(body, inner)
                # Merge the not-taken path (env) with the body exit.
                return self._merge(env, exit_env, f"refine-{x}-merge")

            case If(cond=cond, then=then, else_=else_):
                if cond not in env:
                    raise FlowError(f"branch on undefined variable {cond!r}")
                then_env = self._block(then, dict(env))
                else_env = self._block(else_, dict(env))
                return self._merge(then_env, else_env, "if-merge")

            case While(cond=cond, body=body):
                if cond not in env:
                    raise FlowError(f"loop on undefined variable {cond!r}")
                # Loop head: fresh variables receiving entry + back edge.
                head: dict[str, Qual] = {}
                for name, qual in env.items():
                    hv = fresh_qual_var(f"{name}_loop")
                    self._emit(qual, hv, "loop-entry")
                    head[name] = hv
                exit_env = self._block(body, dict(head))
                for name, hv in head.items():
                    if name in exit_env and exit_env[name] != hv:
                        self._emit(exit_env[name], hv, "loop-back-edge")
                # Variables first defined inside the loop body do not
                # escape (their scope is the body).
                return head

            case _:  # pragma: no cover - exhaustive
                raise FlowError(f"unknown statement {stmt!r}")

    def _block(self, stmts: Block, env: dict[str, Qual]) -> dict[str, Qual]:
        for stmt in stmts:
            env = self._stmt(stmt, env)
        return env

    # -- entry point ----------------------------------------------------
    def analyze(
        self,
        program: Block,
        initial: dict[str, LatticeElement] | None = None,
    ) -> FlowResult:
        env: dict[str, Qual] = dict(initial or {})
        final_env = self._block(program, env)

        mentioned = [q for _k, _x, _l, q, _r in self.checks if isinstance(q, QualVar)]
        solution = solve(self.constraints, self.lattice, extra_vars=mentioned)

        failures = []
        points = []
        for kind, variable, label, qual, required in self.checks:
            actual = (
                solution.least_of(qual) if isinstance(qual, QualVar) else qual
            )
            points.append((kind, label, variable, qual))
            if not self.lattice.leq(actual, required):
                failures.append(
                    CheckFailure(kind, variable, required, actual, label)
                )
        return FlowResult(self.lattice, solution, failures, final_env, points)


def analyze_flow(
    program: Block,
    lattice: QualifierLattice,
    initial: dict[str, LatticeElement] | None = None,
) -> FlowResult:
    """Run the flow-sensitive analysis over a program."""
    return FlowAnalysis(lattice).analyze(program, initial)
