"""Lowering cfront function bodies into the flowsens language.

The flow-sensitive engine (:mod:`repro.flowsens.heap`) analyzes a small
imperative language of strongly-updated scalars and weakly-updated heap
cells.  This module translates each :class:`repro.cfront.cast.FuncDef`
body into that language so the Section 6 prototype runs over *real* C:

* scalar assignments become :class:`Assign` (strong updates);
* pointer-typed declarations and parameters become :class:`NewCell`
  with synthetic sites (``param:p`` / ``decl:p``), allocator calls
  become :class:`NewCell` with a recorded allocation site;
* pointer copies between tracked variables become :class:`CopyPtr`,
  loads and stores through tracked pointers become :class:`LoadCell` /
  :class:`StoreCell` against the per-site cells;
* ``if``/``while``/``do``/``for`` become :class:`If` / :class:`While`
  on a synthesized condition variable, with null-test refinement
  (``if (!p) ...`` zeroes ``p`` in the null branch);
* resource events are made explicit for the linearity pack
  (:mod:`repro.flowsens.linear`): :class:`FreeCell` at releaser calls,
  :class:`UseCell` at dereferences / borrowing calls / returns,
  :class:`ExitPoint` at every function exit;
* anything the lowering cannot model (taking an address, passing a
  pointer to an unknown callee, storing it into the heap) *escapes* the
  pointer — a :class:`Havoc` that clears all inferred facts — so
  best-effort ingestion composes without false positives.

``goto`` and ``switch`` mark the function *unstructured*; the lowering
still produces a best-effort body (value packs and the suggestion mode
keep working) but the linearity pack skips unstructured functions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, TypeVar, Union

if TYPE_CHECKING:
    from .ownership import OwnershipSummary

from ..cfront.cast import (
    Assignment,
    Binary,
    BreakStmt,
    Call,
    CaseStmt,
    Cast,
    CExpr,
    CharConst,
    Comma,
    Compound,
    Conditional,
    ContinueStmt,
    CStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    ExprStmt,
    FloatConst,
    ForStmt,
    FuncDef,
    GotoStmt,
    Ident,
    IfStmt,
    Index,
    InitList,
    IntConst,
    LabeledStmt,
    Member,
    ParamDecl,
    ReturnStmt,
    SizeofType,
    StringConst,
    SwitchStmt,
    Unary,
    VarDecl,
    WhileStmt,
)
from ..cfront.ctypes import CArray, CPointer, CType
from ..qual.lattice import LatticeElement, LatticeError, QualifierLattice
from .language import (
    Assign,
    Block,
    CallVia,
    CopyPtr,
    ExitPoint,
    FlowExpr,
    FlowStmt,
    FreeCell,
    Havoc,
    If,
    Join,
    Literal,
    LoadCell,
    NewCell,
    StoreCell,
    UseCell,
    VarRef,
    While,
)

# ---------------------------------------------------------------------------
# Policy: which callees allocate, release, or merely borrow.
# ---------------------------------------------------------------------------

#: Allocators: the returned pointer owns a fresh resource of this kind.
DEFAULT_ALLOCATORS: Mapping[str, str] = {
    "malloc": "heap",
    "calloc": "heap",
    "realloc": "heap",
    "strdup": "heap",
    "strndup": "heap",
    "fopen": "file",
    "fdopen": "file",
}

#: Releasers: calling one discharges the obligation of the given
#: argument index.
DEFAULT_RELEASERS: Mapping[str, int] = {
    "free": 0,
    "realloc": 0,
    "fclose": 0,
}

#: Borrowers observe their pointer arguments without taking ownership:
#: a call is a *use* (use-after-free checked) but not an escape.
DEFAULT_BORROWERS: frozenset[str] = frozenset(
    {
        "memcpy",
        "memmove",
        "memset",
        "memcmp",
        "strcmp",
        "strncmp",
        "strcasecmp",
        "strlen",
        "strcpy",
        "strncpy",
        "strcat",
        "strncat",
        "strchr",
        "strrchr",
        "strstr",
        "printf",
        "fprintf",
        "sprintf",
        "snprintf",
        "sscanf",
        "puts",
        "fputs",
        "fputc",
        "putchar",
        "fwrite",
        "fread",
        "fgets",
        "fflush",
        "atoi",
        "atol",
        "strtol",
        "strtoul",
        "qsort",
        "abort",
        "exit",
    }
)

#: Value-pack seeds: calls whose result carries a qualifier when the
#: analysis lattice knows it (ignored otherwise).  Lets the suggestion
#: mode rank ``tainted`` / ``dynamic`` over lowered programs.
DEFAULT_SOURCES: Mapping[str, tuple[str, ...]] = {
    "getenv": ("tainted",),
    "gets": ("tainted",),
    "fgets": ("tainted",),
    "read": ("tainted",),
    "recv": ("tainted",),
    "getchar": ("dynamic",),
    "rand": ("dynamic",),
    "time": ("dynamic",),
}


@dataclass(frozen=True)
class LowerPolicy:
    """Which callees allocate / release / borrow, and which seed values."""

    allocators: Mapping[str, str] = field(
        default_factory=lambda: DEFAULT_ALLOCATORS
    )
    releasers: Mapping[str, int] = field(
        default_factory=lambda: DEFAULT_RELEASERS
    )
    borrowers: frozenset[str] = DEFAULT_BORROWERS
    sources: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: DEFAULT_SOURCES
    )
    #: Inferred ownership summaries of resolved callees, by program-level
    #: name (:mod:`repro.flowsens.ownership`).  A summarised call site
    #: lowers to the callee's declared effect (``FreeCell`` / ``UseCell``
    #: / ``NewCell``) instead of the unknown-callee havoc; only callees
    #: absent here keep the escape firewall.
    summaries: Mapping[str, "OwnershipSummary"] = field(default_factory=dict)


DEFAULT_POLICY = LowerPolicy()


@dataclass(frozen=True)
class AllocSite:
    """One allocation site recorded during lowering."""

    site: str
    callee: str
    kind: str
    file: str
    line: int
    col: int


@dataclass
class LoweredFunction:
    """A cfront function body translated into the flowsens language."""

    name: str
    file: str
    line: int
    col: int
    body: Block
    params: tuple[str, ...]
    #: Pointer-typed locals and parameters (the leak-obligation set).
    pointer_vars: frozenset[str]
    #: site label -> allocation metadata, for every allocator call.
    alloc_sites: dict[str, AllocSite]
    #: ``goto`` / ``switch`` present: resource findings are disabled.
    unstructured: bool
    #: Human-readable notes about lowering degradations (havocs etc.).
    notes: tuple[str, ...]
    #: Call sites where an unknown callee escaped a pointer argument —
    #: the residual havoc count after summary substitution.  Feeds the
    #: suggestion mode's confidence discount.
    escape_calls: int = 0

    @property
    def stmt_count(self) -> int:
        def count(stmts: Sequence[FlowStmt]) -> int:
            n = 0
            for s in stmts:
                n += 1
                if isinstance(s, If):
                    n += count(s.then) + count(s.else_)
                elif isinstance(s, While):
                    n += count(s.body)
            return n

        return count(self.body)


_Spanned = Union[CExpr, CStmt, VarDecl, ParamDecl]
_S = TypeVar("_S", bound=FlowStmt)


def _is_pointer_type(ct: CType) -> bool:
    return isinstance(ct, (CPointer, CArray))


def _strip(e: CExpr) -> CExpr:
    """Peel casts and comma chains down to the interesting operand."""
    while True:
        if isinstance(e, Cast):
            e = e.operand
        elif isinstance(e, Comma):
            e = e.right
        else:
            return e


def _is_null(e: CExpr) -> bool:
    e = _strip(e)
    if isinstance(e, IntConst) and e.value == 0:
        return True
    if isinstance(e, Ident) and e.name == "NULL":
        return True
    return False


def _idents_in(e: CExpr) -> list[str]:
    """Every identifier mentioned anywhere inside ``e`` (for escapes)."""
    out: list[str] = []

    def walk(x: CExpr) -> None:
        match x:
            case Ident(name=name):
                out.append(name)
            case Unary(operand=operand):
                walk(operand)
            case Binary(left=left, right=right):
                walk(left)
                walk(right)
            case Assignment(target=target, value=value):
                walk(target)
                walk(value)
            case Conditional(cond=cond, then=then, other=other):
                walk(cond)
                walk(then)
                walk(other)
            case Call(func=func, args=args):
                walk(func)
                for a in args:
                    walk(a)
            case Member(base=base):
                walk(base)
            case Index(base=base, index=index):
                walk(base)
                walk(index)
            case Cast(operand=operand):
                walk(operand)
            case Comma(left=left, right=right):
                walk(left)
                walk(right)
            case InitList(items=items):
                for item in items:
                    walk(item)
            case _:
                pass

    walk(e)
    return out


class _Lowerer:
    def __init__(
        self,
        fdef: FuncDef,
        lattice: QualifierLattice,
        policy: LowerPolicy,
    ) -> None:
        self.f = fdef
        self.lattice = lattice
        self.policy = policy
        self.bottom = Literal(lattice.bottom)
        #: variables with a points-to entry (CopyPtr / LoadCell-safe)
        self.tracked: set[str] = set()
        #: variables with a scalar value entry (VarRef-safe)
        self.known: set[str] = set()
        self.pointer_vars: set[str] = set()
        self.alloc_sites: dict[str, AllocSite] = {}
        self.notes: list[str] = []
        self.unstructured = False
        self.escape_calls = 0
        self._counter = itertools.count()

    # -- helpers ----------------------------------------------------------
    def _at(self, stmt: _S, node: _Spanned) -> _S:
        """Stamp a lowered statement with the C node's source span."""
        return replace(stmt, line=node.line, col=node.col, file=self.f.file)

    def _tmp(self, prefix: str) -> str:
        # '%' is not legal in C identifiers, so temps never collide.
        return f"%{prefix}{next(self._counter)}"

    def _note(self, text: str) -> None:
        if text not in self.notes:
            self.notes.append(text)

    def _source_element(
        self, names: tuple[str, ...]
    ) -> Optional[LatticeElement]:
        el = self.lattice.bottom
        seeded = False
        for n in names:
            try:
                el = self.lattice.join(el, self.lattice.atom(n))
                seeded = True
            except LatticeError:
                continue
        return el if seeded else None

    def _fresh_var(self, name: str, at: _Spanned) -> list[FlowStmt]:
        """Define ``name`` with an unknown value (and drop pointer facts)."""
        self.known.add(name)
        self.tracked.discard(name)
        return [
            self._at(Assign(target=name, value=self.bottom), at),
            self._at(Havoc(target=name), at),
        ]

    def _escape(self, name: str, at: _Spanned) -> list[FlowStmt]:
        """``name`` escapes: some unknown party may now own / mutate it."""
        if name not in self.known:
            return []
        self.tracked.discard(name)
        return [self._at(Havoc(target=name), at)]

    def _use(self, name: str, at: _Spanned) -> list[FlowStmt]:
        if name in self.known and name in self.pointer_vars:
            return [self._at(UseCell(pointer=name), at)]
        return []

    def _owns_pointer(self, e: CExpr) -> bool:
        """Whether evaluating ``e`` may yield an owned pointer value."""
        return any(n in self.pointer_vars for n in _idents_in(e))

    # -- expressions ------------------------------------------------------
    def _expr(self, e: CExpr) -> tuple[list[FlowStmt], FlowExpr]:
        match e:
            case Ident(name=name):
                if name in self.known:
                    return [], VarRef(name)
                return [], self.bottom
            case (
                IntConst()
                | FloatConst()
                | CharConst()
                | StringConst()
                | SizeofType()
            ):
                return [], self.bottom
            case Cast(operand=operand):
                return self._expr(operand)
            case Comma(left=left, right=right):
                pre, _ = self._expr(left)
                pre2, v = self._expr(right)
                return pre + pre2, v
            case Unary(op="*", operand=operand):
                return self._load(operand, e)
            case Unary(op="&", operand=operand):
                pre, _ = self._expr(operand)
                # Taking an address: whoever receives it may mutate or
                # free the object, so the named pointer escapes.
                target = _strip(operand)
                if isinstance(target, Ident):
                    pre += self._escape(target.name, e)
                return pre, self.bottom
            case Unary(op=op, operand=operand):
                pre, v = self._expr(operand)
                if op in ("++", "--"):
                    target = _strip(operand)
                    if isinstance(target, Ident) and target.name in self.known:
                        # in-place update: conservatively re-assign
                        pre.append(
                            self._at(
                                Assign(
                                    target=target.name,
                                    value=VarRef(target.name),
                                ),
                                e,
                            )
                        )
                        self.tracked.discard(target.name)
                return pre, v
            case Binary(left=left, right=right):
                pre_l, vl = self._expr(left)
                pre_r, vr = self._expr(right)
                return pre_l + pre_r, Join(vl, vr)
            case Conditional(cond=cond, then=then, other=other):
                pre, _ = self._expr(cond)
                pre_t, vt = self._expr(then)
                pre_o, vo = self._expr(other)
                return pre + pre_t + pre_o, Join(vt, vo)
            case Index(base=base, index=index):
                pre_i, _ = self._expr(index)
                pre, v = self._load(base, e)
                return pre_i + pre, v
            case Member():
                return self._load_member(e)
            case Assignment():
                stmts, name = self._assignment(e)
                if name is not None and name in self.known:
                    return stmts, VarRef(name)
                return stmts, self.bottom
            case Call():
                return self._call(e)
            case InitList(items=items):
                pre = []
                for item in items:
                    p, _ = self._expr(item)
                    pre += p
                return pre, self.bottom
            case _:
                self._note(f"opaque expression {type(e).__name__}")
                return [], self.bottom

    def _load(
        self, pointer: CExpr, at: CExpr
    ) -> tuple[list[FlowStmt], FlowExpr]:
        """A read through ``*pointer`` / ``pointer[i]``."""
        target = _strip(pointer)
        if isinstance(target, Ident) and target.name in self.known:
            pre = self._use(target.name, at)
            if target.name in self.tracked:
                tmp = self._tmp("t")
                pre.append(
                    self._at(LoadCell(target=tmp, pointer=target.name), at)
                )
                self.known.add(tmp)
                return pre, VarRef(tmp)
            return pre, self.bottom
        pre, _ = self._expr(target)
        return pre, self.bottom

    def _load_member(self, e: Member) -> tuple[list[FlowStmt], FlowExpr]:
        base = _strip(e.base)
        if e.arrow and isinstance(base, Ident) and base.name in self.known:
            pre = self._use(base.name, e)
            if base.name in self.tracked:
                tmp = self._tmp("t")
                pre.append(
                    self._at(LoadCell(target=tmp, pointer=base.name), e)
                )
                self.known.add(tmp)
                return pre, VarRef(tmp)
            return pre, self.bottom
        pre, _ = self._expr(e.base)
        return pre, self.bottom

    def _call(self, e: Call) -> tuple[list[FlowStmt], FlowExpr]:
        name = e.func.name if isinstance(e.func, Ident) else None
        pre: list[FlowStmt] = []
        if name is None:
            p, _ = self._expr(e.func)
            pre += p
        for arg in e.args:
            p, _ = self._expr(arg)
            pre += p
        if name is not None and name in self.policy.releasers:
            idx = self.policy.releasers[name]
            if idx < len(e.args):
                released = _strip(e.args[idx])
                if isinstance(released, Ident) and released.name in self.known:
                    pre.append(self._at(FreeCell(pointer=released.name), e))
                else:
                    self._note(f"release of non-variable argument to {name}")
        elif name is not None and name in self.policy.allocators:
            # An allocator call whose result is *not* captured by an
            # assignment (handled in _assign_ident) leaks immediately,
            # but with no variable to track we can only note it.
            self._note(f"uncaptured allocation from {name}")
        elif name is not None and name in self.policy.borrowers:
            for arg in e.args:
                a = _strip(arg)
                if isinstance(a, Ident):
                    pre += self._use(a.name, e)
        elif name is not None and name in self.policy.summaries:
            summary = self.policy.summaries[name]
            pre += self._summary_arg_events(e, summary)
            if summary.returns_owned:
                # Result not captured (handled in _assign_ident): the
                # fresh allocation has no variable to track.
                self._note(f"uncaptured allocation from {name}")
        else:
            # Unknown callee: every pointer argument is used AND escapes
            # (the callee may retain or free it).
            escaped_any = False
            for arg in e.args:
                for ident in _idents_in(arg):
                    if ident in self.pointer_vars:
                        pre += self._use(ident, e)
                        escape = self._escape(ident, e)
                        escaped_any = escaped_any or bool(escape)
                        pre += escape
            if escaped_any:
                self.escape_calls += 1
        value: FlowExpr = self.bottom
        if name is not None and name in self.policy.sources:
            el = self._source_element(self.policy.sources[name])
            if el is not None:
                value = Literal(el)
        return pre, value

    def _summary_arg_events(
        self, e: Call, summary: "OwnershipSummary"
    ) -> list[FlowStmt]:
        """Lower the per-argument effects a callee's ownership summary
        declares: FREES discharges (``FreeCell`` with call-via
        provenance), BORROWS observes (``UseCell``), ESCAPES keeps the
        unknown-callee havoc.  Arguments beyond the summarised
        parameter list (varargs) escape conservatively."""
        from .ownership import PARAM_BORROWS, PARAM_FREES

        via = CallVia(
            callee=summary.name,
            file=summary.file,
            line=summary.line,
            col=summary.col,
        )
        pre: list[FlowStmt] = []
        for i, arg in enumerate(e.args):
            verdict = summary.params[i] if i < len(summary.params) else None
            a = _strip(arg)
            if verdict == PARAM_FREES:
                if isinstance(a, Ident) and a.name in self.known:
                    pre.append(
                        self._at(FreeCell(pointer=a.name, via=via), e)
                    )
                    continue
                self._note(
                    f"release of non-variable argument to {summary.name}"
                )
            elif verdict == PARAM_BORROWS:
                if isinstance(a, Ident):
                    pre += self._use(a.name, e)
                continue
            # ESCAPES / varargs / non-variable FREES argument: firewall.
            for ident in _idents_in(arg):
                if ident in self.pointer_vars:
                    pre += self._use(ident, e)
                    pre += self._escape(ident, e)
        return pre

    # -- assignments ------------------------------------------------------
    def _assignment(self, e: Assignment) -> tuple[list[FlowStmt], Optional[str]]:
        """Lower an assignment; returns (stmts, target-name-if-scalar)."""
        target = e.target
        if e.op != "=":
            # Compound assignment (+=, etc.): read-modify-write.
            pre, rhs = self._expr(e.value)
            t = _strip(target)
            if isinstance(t, Ident) and t.name in self.known:
                pre.append(
                    self._at(
                        Assign(
                            target=t.name, value=Join(VarRef(t.name), rhs)
                        ),
                        e,
                    )
                )
                self.tracked.discard(t.name)
                return pre, t.name
            return pre + self._store(target, rhs, e, e.value), None
        if isinstance(target, Ident):
            stmts, _ = self._assign_ident(target.name, e.value, e)
            return stmts, target.name
        pre, rhs = self._expr(e.value)
        stmts = pre + self._store(target, rhs, e, e.value)
        # Pointer values stored into memory escape: the heap now holds
        # an alias that exits our scope of reasoning.
        for ident in _idents_in(e.value):
            if ident in self.pointer_vars:
                stmts += self._escape(ident, e)
        return stmts, None

    def _assign_ident(
        self, name: str, value: CExpr, at: _Spanned
    ) -> tuple[list[FlowStmt], Optional[str]]:
        rhs = _strip(value)
        # p = malloc(...) and friends: a fresh tracked allocation.
        if isinstance(rhs, Call) and isinstance(rhs.func, Ident):
            callee = rhs.func.name
            if callee in self.policy.allocators:
                pre: list[FlowStmt] = []
                for arg in rhs.args:
                    p, _ = self._expr(arg)
                    pre += p
                if callee in self.policy.releasers:
                    # realloc: releases its pointer argument on success.
                    idx = self.policy.releasers[callee]
                    if idx < len(rhs.args):
                        old = _strip(rhs.args[idx])
                        if (
                            isinstance(old, Ident)
                            and old.name in self.known
                        ):
                            pre.append(
                                self._at(FreeCell(pointer=old.name), rhs)
                            )
                site = (
                    f"{callee}@{rhs.line}:{rhs.col}#{next(self._counter)}"
                )
                self.alloc_sites[site] = AllocSite(
                    site=site,
                    callee=callee,
                    kind=self.policy.allocators[callee],
                    file=self.f.file,
                    line=rhs.line,
                    col=rhs.col,
                )
                pre.append(self._at(NewCell(target=name, site=site), at))
                self.known.add(name)
                self.tracked.add(name)
                self.pointer_vars.add(name)
                return pre, name
            summary = self.policy.summaries.get(callee)
            if summary is not None and summary.returns_owned:
                # p = make_buffer(...): the callee's summary says every
                # return is a fresh owned allocation, so the call site
                # is an allocation site of the summarised kind — the
                # caller inherits the leak obligation.
                pre = []
                for arg in rhs.args:
                    p, _ = self._expr(arg)
                    pre += p
                pre += self._summary_arg_events(rhs, summary)
                site = (
                    f"{callee}@{rhs.line}:{rhs.col}#{next(self._counter)}"
                )
                self.alloc_sites[site] = AllocSite(
                    site=site,
                    callee=callee,
                    kind=summary.returns_kind,
                    file=self.f.file,
                    line=rhs.line,
                    col=rhs.col,
                )
                via = CallVia(
                    callee=summary.name,
                    file=summary.file,
                    line=summary.line,
                    col=summary.col,
                )
                pre.append(
                    self._at(NewCell(target=name, site=site, via=via), at)
                )
                self.known.add(name)
                self.tracked.add(name)
                self.pointer_vars.add(name)
                return pre, name
        # p = q where q is a tracked pointer: alias copy.
        if isinstance(rhs, Ident) and rhs.name in self.tracked:
            self.known.add(name)
            self.tracked.add(name)
            self.pointer_vars.add(name)
            return (
                [self._at(CopyPtr(target=name, source=rhs.name), at)],
                name,
            )
        # x = *p / x = p->f / x = p[i] / any other rhs: a plain value.
        pre, v = self._expr(value)
        pre.append(self._at(Assign(target=name, value=v), at))
        self.known.add(name)
        self.tracked.discard(name)
        return pre, name

    def _store(
        self,
        target: CExpr,
        value: FlowExpr,
        at: _Spanned,
        rhs_expr: Optional[CExpr] = None,
    ) -> list[FlowStmt]:
        """A write through memory: ``*p = v``, ``p->f = v``, ``p[i] = v``."""
        out: list[FlowStmt] = []
        base: Optional[CExpr] = None
        match target:
            case Unary(op="*", operand=operand):
                base = operand
            case Member(base=b, arrow=True):
                base = b
            case Member(base=b, arrow=False):
                p, _ = self._expr(b)
                return p
            case Index(base=b, index=index):
                p, _ = self._expr(index)
                out += p
                base = b
            case _:
                p, _ = self._expr(target)
                return p
        # Storing an owned pointer transfers ownership OUT of this scope
        # (the rhs ident is havocked by the caller); the cell must not
        # re-own it, or loads would resurrect the leak obligation.
        if rhs_expr is not None and self._owns_pointer(rhs_expr):
            value = self.bottom
        ident = _strip(base)
        if isinstance(ident, Ident) and ident.name in self.known:
            out += self._use(ident.name, at)
            if ident.name in self.tracked:
                out.append(
                    self._at(
                        StoreCell(pointer=ident.name, value=value), at
                    )
                )
        else:
            p, _ = self._expr(base)
            out += p
        return out

    # -- conditions -------------------------------------------------------
    def _cond(
        self, e: CExpr, at: _Spanned
    ) -> tuple[list[FlowStmt], str, Optional[str], bool]:
        """Lower a branch condition.

        Returns ``(pre, cond_var, null_var, null_in_then)``: when the
        condition is a null test of a pointer variable, ``null_var``
        names it and ``null_in_then`` says which branch sees NULL.
        """
        pre, v = self._expr(e)
        cvar = self._tmp("c")
        pre.append(self._at(Assign(target=cvar, value=v), at))
        self.known.add(cvar)
        null_var, null_in_then = self._null_test(e)
        return pre, cvar, null_var, null_in_then

    def _null_test(self, e: CExpr) -> tuple[Optional[str], bool]:
        e = _strip(e)
        match e:
            case Unary(op="!", operand=operand):
                return self._pointer_of(operand), True
            case Binary(op="==", left=left, right=right):
                if _is_null(right):
                    return self._pointer_of(left), True
                if _is_null(left):
                    return self._pointer_of(right), True
            case Binary(op="!=", left=left, right=right):
                if _is_null(right):
                    return self._pointer_of(left), False
                if _is_null(left):
                    return self._pointer_of(right), False
            case _:
                name = self._pointer_of(e)
                if name is not None:
                    return name, False
        return None, False

    def _pointer_of(self, e: CExpr) -> Optional[str]:
        e = _strip(e)
        if (
            isinstance(e, Assignment)
            and e.op == "="
            and isinstance(e.target, Ident)
        ):
            e = e.target
        if isinstance(e, Ident) and e.name in self.pointer_vars:
            return e.name
        return None

    def _null_refine(
        self, name: Optional[str], at: _Spanned
    ) -> list[FlowStmt]:
        """In the branch where ``name`` is NULL it holds no resource."""
        if name is None or name not in self.known:
            return []
        return [self._at(Assign(target=name, value=self.bottom), at)]

    # -- statements -------------------------------------------------------
    def _terminates(self, s: Optional[CStmt]) -> bool:
        match s:
            case ReturnStmt() | BreakStmt() | ContinueStmt() | GotoStmt():
                return True
            case Compound(body=body):
                return bool(body) and self._terminates(body[-1])
            case IfStmt(then=then, other=other):
                return (
                    other is not None
                    and self._terminates(then)
                    and self._terminates(other)
                )
            case LabeledStmt(stmt=stmt):
                return self._terminates(stmt)
            case _:
                return False

    def _body_of(self, s: Optional[CStmt]) -> list[CStmt]:
        if s is None:
            return []
        if isinstance(s, Compound):
            return list(s.body)
        return [s]

    def _seq(self, stmts: Sequence[CStmt]) -> list[FlowStmt]:
        out: list[FlowStmt] = []
        for i, s in enumerate(stmts):
            rest = stmts[i + 1 :]
            if isinstance(s, IfStmt):
                consumed = self._if(s, rest, out)
                if consumed:
                    return out
                continue
            if isinstance(s, ReturnStmt):
                out += self._return(s)
                return out  # anything after a return is unreachable
            if isinstance(s, (BreakStmt, ContinueStmt)):
                # Within this straight-line sequence nothing after a
                # break/continue runs; the loop-head merge approximates
                # the actual control transfer.
                return out
            out += self._stmt(s)
        return out

    def _if(
        self, s: IfStmt, rest: Sequence[CStmt], out: list[FlowStmt]
    ) -> bool:
        """Lower an if; returns True when ``rest`` was folded in.

        When exactly one branch terminates (the early-return idiom),
        the statements *after* the if only run on the other path, so
        they are folded into that branch — this is what lets the
        resource pack see ``if (!p) return -1;`` as a clean split
        between the NULL path and the continue-with-p path.
        """
        pre, cvar, null_var, null_in_then = self._cond(s.cond, s)
        out += pre
        then_terminates = self._terminates(s.then)
        else_terminates = s.other is not None and self._terminates(s.other)

        saved_tracked, saved_known = set(self.tracked), set(self.known)

        then_b = self._null_refine(null_var, s) if null_in_then else []
        then_b += self._seq(self._body_of(s.then))
        then_tracked, then_known = self.tracked, self.known

        self.tracked, self.known = set(saved_tracked), set(saved_known)
        else_b = [] if null_in_then else self._null_refine(null_var, s)
        else_b += self._seq(self._body_of(s.other))

        consumed = False
        if rest and then_terminates and not else_terminates:
            else_b += self._seq(list(rest))
            consumed = True
        elif rest and else_terminates and not then_terminates:
            # rest runs only on the then path: restore its exact facts.
            self.tracked = set(then_tracked)
            self.known = set(then_known)
            then_b += self._seq(list(rest))
            consumed = True
        elif then_terminates and else_terminates:
            consumed = bool(rest)

        self.tracked |= then_tracked
        self.known |= then_known
        out.append(
            self._at(
                If(cond=cvar, then=tuple(then_b), else_=tuple(else_b)), s
            )
        )
        return consumed

    def _value_idents(self, e: CExpr) -> list[str]:
        """Idents whose pointer value may reach the value of ``e``.

        Like :func:`_idents_in`, except that the arguments of a call
        whose callee is a known borrower or carries an ownership
        summary are excluded: the call site already applied the
        callee's contract, and such a callee cannot smuggle an
        argument out through its result — borrowers only observe, and
        a summarised function that returns (an alias of) a parameter
        is summarised ``escapes``, which the call lowering applied."""
        match e:
            case Call(func=Ident(name=name)) if name is not None and (
                name in self.policy.borrowers or name in self.policy.summaries
            ):
                return []
            case Call(func=func, args=args):
                out = self._value_idents(func)
                for a in args:
                    out += self._value_idents(a)
                return out
            case Unary(operand=operand):
                return self._value_idents(operand)
            case Binary(left=left, right=right):
                return self._value_idents(left) + self._value_idents(right)
            case Assignment(target=target, value=value):
                return self._value_idents(target) + self._value_idents(value)
            case Conditional(cond=cond, then=then, other=other):
                return (
                    self._value_idents(cond)
                    + self._value_idents(then)
                    + self._value_idents(other)
                )
            case Cast(operand=operand):
                return self._value_idents(operand)
            case Comma(left=left, right=right):
                return self._value_idents(left) + self._value_idents(right)
            case Member(base=base):
                return self._value_idents(base)
            case Index(base=base, index=index):
                return self._value_idents(base) + self._value_idents(index)
            case InitList(items=items):
                flat: list[str] = []
                for item in items:
                    flat += self._value_idents(item)
                return flat
            case _:
                return _idents_in(e)

    def _return(self, s: ReturnStmt) -> list[FlowStmt]:
        out: list[FlowStmt] = []
        if s.value is not None:
            pre, _ = self._expr(s.value)
            out += pre
            # A returned pointer is observed (use-after-free check) and
            # then owned by the caller (escape — no leak obligation).
            for ident in dict.fromkeys(self._value_idents(s.value)):
                if ident in self.pointer_vars:
                    out += self._use(ident, s)
                    out += self._escape(ident, s)
        out.append(self._at(ExitPoint(), s))
        return out

    def _stmt(self, s: CStmt) -> list[FlowStmt]:
        match s:
            case EmptyStmt():
                return []
            case ExprStmt(expr=expr):
                pre, _ = self._expr(expr)
                return pre
            case DeclStmt(decls=decls):
                out: list[FlowStmt] = []
                for decl in decls:
                    out += self._decl(decl)
                return out
            case Compound(body=body):
                return self._seq(list(body))
            case IfStmt():
                folded: list[FlowStmt] = []
                self._if(s, [], folded)
                return folded
            case WhileStmt(cond=cond, body=body):
                return self._while(cond, self._body_of(body), s)
            case DoWhileStmt(body=body, cond=cond):
                stmts = self._body_of(body)
                first = self._seq(list(stmts))
                return first + self._while(cond, stmts, s)
            case ForStmt(init=init, cond=cond, step=step, body=body):
                out = []
                if isinstance(init, DeclStmt):
                    out += self._stmt(init)
                elif init is not None:
                    pre, _ = self._expr(init)
                    out += pre
                out += self._while(cond, self._body_of(body), s, step=step)
                return out
            case ReturnStmt():
                return self._return(s)
            case BreakStmt() | ContinueStmt():
                return []
            case GotoStmt(label=label):
                self.unstructured = True
                self._note(f"goto {label}: unstructured control flow")
                return []
            case LabeledStmt(stmt=stmt):
                self.unstructured = True
                self._note("label: unstructured control flow")
                return self._stmt(stmt)
            case SwitchStmt(value=value, body=body):
                self.unstructured = True
                self._note("switch: unstructured control flow")
                pre, _ = self._expr(value)
                cvar = self._tmp("c")
                pre.append(
                    self._at(Assign(target=cvar, value=self.bottom), s)
                )
                self.known.add(cvar)
                arm = self._seq(self._body_of(body))
                pre.append(
                    self._at(If(cond=cvar, then=tuple(arm), else_=()), s)
                )
                return pre
            case CaseStmt(stmt=stmt):
                return self._stmt(stmt)
            case _:
                self._note(f"opaque statement {type(s).__name__}")
                return []

    def _while(
        self,
        cond: Optional[CExpr],
        body: Sequence[CStmt],
        at: CStmt,
        step: Optional[CExpr] = None,
    ) -> list[FlowStmt]:
        out: list[FlowStmt] = []
        cond_expr: Optional[CExpr] = cond
        if cond is None:
            cvar = self._tmp("c")
            out.append(self._at(Assign(target=cvar, value=self.bottom), at))
            self.known.add(cvar)
            null_var: Optional[str] = None
            null_in_then = False
        else:
            pre, cvar, null_var, null_in_then = self._cond(cond, at)
            out += pre
        body_b = self._seq(list(body))
        if step is not None:
            p, _ = self._expr(step)
            body_b += p
        if cond_expr is not None:
            # Re-evaluate the condition at the bottom of the body so the
            # back edge sees the updated condition variable.
            pre2, v2 = self._expr(cond_expr)
            body_b += pre2
            body_b.append(self._at(Assign(target=cvar, value=v2), at))
        out.append(self._at(While(cond=cvar, body=tuple(body_b)), at))
        if null_var is not None and not null_in_then:
            # while (p) { ... } — after the loop p is NULL.
            out += self._null_refine(null_var, at)
        return out

    def _decl(self, decl: VarDecl) -> list[FlowStmt]:
        is_ptr = _is_pointer_type(decl.type)
        if is_ptr:
            self.pointer_vars.add(decl.name)
        if decl.init is None:
            if is_ptr and not isinstance(decl.type, CArray):
                site = f"decl:{decl.name}#{next(self._counter)}"
                self.known.add(decl.name)
                self.tracked.add(decl.name)
                return [self._at(NewCell(target=decl.name, site=site), decl)]
            return self._fresh_var(decl.name, decl)
        if isinstance(decl.init, InitList):
            pre, _ = self._expr(decl.init)
            return pre + self._fresh_var(decl.name, decl)
        stmts, _ = self._assign_ident(decl.name, decl.init, decl)
        return stmts

    # -- entry ------------------------------------------------------------
    def lower(self) -> LoweredFunction:
        prologue: list[FlowStmt] = []
        params: list[str] = []
        for param in self.f.params:
            if param.name is None:
                continue
            params.append(param.name)
            if _is_pointer_type(param.type):
                self.pointer_vars.add(param.name)
                self.known.add(param.name)
                self.tracked.add(param.name)
                prologue.append(
                    self._at(
                        NewCell(target=param.name, site=f"param:{param.name}"),
                        param,
                    )
                )
            else:
                prologue += self._fresh_var(param.name, param)
        body = self._seq(list(self.f.body.body))
        if not self._terminates(self.f.body):
            body.append(
                ExitPoint(line=self.f.line, col=self.f.col, file=self.f.file)
            )
        return LoweredFunction(
            name=self.f.name,
            file=self.f.file,
            line=self.f.line,
            col=self.f.col,
            body=tuple(prologue + body),
            params=tuple(params),
            pointer_vars=frozenset(self.pointer_vars),
            alloc_sites=self.alloc_sites,
            unstructured=self.unstructured,
            notes=tuple(self.notes),
            escape_calls=self.escape_calls,
        )


def lower_function(
    fdef: FuncDef,
    lattice: QualifierLattice,
    policy: LowerPolicy = DEFAULT_POLICY,
) -> LoweredFunction:
    """Translate one cfront function body into the flowsens language."""
    return _Lowerer(fdef, lattice, policy).lower()
