"""Synthetic benchmark suite standing in for the paper's six C packages.

* :mod:`repro.benchsuite.generator` — deterministic C program generator
  whose programs have exactly the interesting-const-position mix a spec
  requests (see DESIGN.md's substitution rationale).
* :mod:`repro.benchsuite.suite` — the six Table 1 benchmarks with the
  paper's published counts, and the harness that reruns the whole
  Section 4.4 experiment.
"""

from .generator import BenchmarkGenerator, PositionMix, generate_benchmark
from .suite import (
    BenchmarkSpec,
    PAPER_BENCHMARKS,
    PAPER_TIMINGS,
    benchmark_rows,
    generate_source,
    load_program,
    run_benchmark,
    scaling_spec,
    scaling_specs,
    spec_by_name,
)

__all__ = [name for name in dir() if not name.startswith("_")]
