"""The six-benchmark suite of Tables 1 and 2.

Each :class:`BenchmarkSpec` records the paper's published metadata (name,
line count, description — Table 1) and const counts (Declared / Mono /
Poly / Total — Table 2).  :func:`generate_source` produces the synthetic
stand-in program for a spec (see DESIGN.md's substitution note and
:mod:`repro.benchsuite.generator`), and :func:`benchmark_rows` runs the
full experiment: parse, monomorphic inference, polymorphic inference,
and count, returning one Table-2 row per benchmark with *measured*
timings and counts.

Because the generator hits the position mix exactly, the count columns
of the regenerated Table 2 match the paper's numbers; the timing columns
are ours (Python on modern hardware vs. the paper's ML/BANE prototype on
1999 hardware) and are compared only in *shape*: roughly linear scaling
in program size, and polymorphic inference within ~3x of monomorphic.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache

from ..cfront.sema import Program
from ..constinfer.cache import AnalysisCache, CacheStats
from ..constinfer.engine import run_mono, run_poly
from ..constinfer.results import BenchmarkRow, make_row
from .generator import PositionMix, generate_benchmark


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: Table 1 metadata plus Table 2 count targets."""

    name: str
    lines: int
    description: str
    declared: int
    mono: int
    poly: int
    total: int
    seed: int

    @property
    def mix(self) -> PositionMix:
        return PositionMix.from_table2(self.declared, self.mono, self.poly, self.total)


#: The paper's six benchmarks (Table 1 names/lines/descriptions; Table 2
#: Declared/Mono/Poly/Total-possible counts).
PAPER_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("woman-3.0a", 1496, "Replacement for man package", 50, 67, 72, 95, 1101),
    BenchmarkSpec("patch-2.5", 5303, "Apply a diff file to an original", 84, 99, 107, 148, 1102),
    BenchmarkSpec("m4-1.4", 7741, "Unix macro preprocessor", 88, 249, 262, 370, 1103),
    BenchmarkSpec("diffutils-2.7", 8741, "Collection of utilities for diffing files", 153, 209, 243, 372, 1104),
    BenchmarkSpec("ssh-1.2.26", 18620, "Secure shell", 147, 316, 347, 547, 1105),
    BenchmarkSpec("uucp-1.04", 36913, "Unix to unix copy package", 433, 1116, 1299, 1773, 1106),
)

#: The paper's measured timings (seconds, Table 2) — kept for the
#: EXPERIMENTS.md paper-vs-measured comparison, never asserted against.
PAPER_TIMINGS: dict[str, tuple[float, float, float]] = {
    "woman-3.0a": (4.84, 3.91, 8.91),
    "patch-2.5": (16.98, 18.70, 33.43),
    "m4-1.4": (19.48, 36.81, 64.43),
    "diffutils-2.7": (24.46, 35.70, 57.34),
    "ssh-1.2.26": (84.55, 101.90, 174.28),
    "uucp-1.04": (113.75, 177.71, 457.16),
}


# Bounded: the six paper specs plus a scaling sweep fit easily in 32
# entries, but each generated source is tens to hundreds of kilobytes —
# an unbounded cache over arbitrary ad-hoc specs (property tests,
# sweeps at growing scales) would hold every source ever generated for
# the life of the process.
@lru_cache(maxsize=32)
def generate_source(spec: BenchmarkSpec) -> str:
    """The benchmark's deterministic C source."""
    return generate_benchmark(
        spec.name, spec.seed, spec.mix, spec.lines, spec.description
    )


def scaling_spec(scale: int) -> BenchmarkSpec:
    """A synthetic scaling-sweep benchmark.

    Same position mix and seeds as ``benchmarks/test_scaling.py`` (mix
    ``(10, 10, 9, 10) * scale``, natural length), so sweep results are
    comparable across the test suite, the CLI, and bench_snapshot.
    """
    return BenchmarkSpec(
        name=f"sweep-{scale}",
        lines=0,
        description=f"synthetic scaling sweep x{scale}",
        declared=10 * scale,
        mono=20 * scale,
        poly=29 * scale,
        total=39 * scale,
        seed=42 + scale,
    )


def scaling_specs(scales: tuple[int, ...] = (1, 2, 4, 8)) -> tuple[BenchmarkSpec, ...]:
    """Specs for a program-size scaling sweep (Figure-style experiment)."""
    return tuple(scaling_spec(scale) for scale in scales)


def load_program(spec: BenchmarkSpec) -> tuple[Program, float, int]:
    """Parse a benchmark; returns (program, compile seconds, actual lines)."""
    source = generate_source(spec)
    start = time.perf_counter()
    program = Program.from_source(source, spec.name)
    elapsed = time.perf_counter() - start
    return program, elapsed, source.count("\n") + 1


def run_benchmark(
    spec: BenchmarkSpec,
    *,
    poly_jobs: int | None = None,
    cache: AnalysisCache | None = None,
) -> BenchmarkRow:
    """Full Table-2 experiment for one benchmark.

    ``poly_jobs`` selects the polymorphic engine's wavefront scheduler
    (``None`` keeps the sequential SCC traversal); ``cache`` routes
    parsing and constraint generation through a content-addressed
    :class:`~repro.constinfer.cache.AnalysisCache`.  Neither changes any
    count — the wavefront schedule is bit-deterministic and warm cache
    solves reproduce cold classifications exactly.
    """
    if cache is not None:
        source = generate_source(spec)
        lines = source.count("\n") + 1
        mono = cache.cached_run(source, spec.name, "mono")
        poly = cache.cached_run(source, spec.name, "poly", jobs=poly_jobs)
        compile_seconds = mono.timings.parse_seconds if mono.timings else 0.0
        return make_row(spec.name, lines, spec.description, compile_seconds, mono, poly)

    program, compile_seconds, lines = load_program(spec)
    mono = run_mono(program)
    poly = run_poly(program, jobs=poly_jobs)
    # The engines never see source text, so charge the parse to the
    # mono row's stage breakdown (the suite parses once for both runs).
    if mono.timings is not None:
        mono.timings = dataclasses.replace(
            mono.timings, parse_seconds=compile_seconds
        )
    return make_row(spec.name, lines, spec.description, compile_seconds, mono, poly)


def _run_benchmark_task(
    spec: BenchmarkSpec, cache_dir: str | None, poly_jobs: int | None
) -> tuple[BenchmarkRow, tuple[int, int, int, int, int]]:
    """Process-pool worker: one benchmark end to end.

    Top-level so it pickles; returns the worker's cache counters
    alongside the row so the parent can aggregate hit/miss totals.
    """
    cache = AnalysisCache(cache_dir) if cache_dir else None
    row = run_benchmark(spec, poly_jobs=poly_jobs, cache=cache)
    counters = (
        (cache.stats.hits, cache.stats.misses, cache.stats.stores,
         cache.stats.binary_hits, cache.stats.memory_hits)
        if cache
        else (0, 0, 0, 0, 0)
    )
    return row, counters


def benchmark_rows(
    specs: tuple[BenchmarkSpec, ...] = PAPER_BENCHMARKS,
    *,
    jobs: int | None = None,
    poly_jobs: int | None = None,
    cache_dir: str | None = None,
    cache_stats: CacheStats | None = None,
) -> list[BenchmarkRow]:
    """Run the whole suite (the full Table 2 / Figure 6 experiment).

    ``jobs > 1`` fans the benchmarks over a ``ProcessPoolExecutor`` —
    rows come back in spec order regardless of which worker finishes
    first, so the report is deterministic.  ``cache_dir`` enables the
    content-addressed analysis cache (workers share the directory; the
    atomic writes make concurrent stores safe).  ``cache_stats``, if
    given, accumulates hit/miss/store counters across all workers.
    """
    if jobs is not None and jobs > 1 and len(specs) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(
                pool.map(
                    _run_benchmark_task,
                    specs,
                    [cache_dir] * len(specs),
                    [poly_jobs] * len(specs),
                )
            )
        if cache_stats is not None:
            for _row, (hits, misses, stores, binary_hits, memory_hits) in outcomes:
                cache_stats.merge(
                    CacheStats(hits, misses, stores, binary_hits, memory_hits)
                )
        return [row for row, _counters in outcomes]

    cache = AnalysisCache(cache_dir) if cache_dir else None
    rows = [run_benchmark(spec, poly_jobs=poly_jobs, cache=cache) for spec in specs]
    if cache is not None and cache_stats is not None:
        cache_stats.merge(cache.stats)
    return rows


def solver_stats_report(
    specs: tuple[BenchmarkSpec, ...] = PAPER_BENCHMARKS,
) -> str:
    """Render the solver pipeline shape for the whole suite.

    Complements Table 2: the same runs, but reporting what the
    condensation kernel did (variables, collapsed cycles, deduplicated
    edges, propagation steps) instead of const counts.  Handy one-liner::

        PYTHONPATH=src python -c "from repro.benchsuite.suite import \\
            solver_stats_report; print(solver_stats_report())"
    """
    from ..constinfer.results import format_solver_stats

    return format_solver_stats(benchmark_rows(specs))


def spec_by_name(name: str) -> BenchmarkSpec:
    for spec in PAPER_BENCHMARKS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown benchmark {name!r}")
