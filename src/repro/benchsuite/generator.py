"""Deterministic synthetic C benchmark generator.

The paper's experiment (Section 4.4) ran const inference over six
1996-era C packages.  Those exact sources are not available offline, so
— per the substitution policy in DESIGN.md — this module generates C
programs with the same *shape statistics* the experiment measures.  The
inference is syntax-directed, so four ingredients fully determine the
Declared / Mono / Poly / Total columns of Table 2:

``a`` positions whose const is **declared** in the source,
``b`` undeclared read-only positions (monomorphic inference adds these),
``c`` positions monomorphic analysis loses to context mixing but
      polymorphic analysis keeps (the Poly − Mono gap: a function used
      with both const and non-const arguments, à la the paper's ``id``
      and ``strchr`` discussion),
``d`` positions genuinely written through (or passed to conservative
      library functions), which no analysis can make const.

Each ingredient is produced by a small family of *units* — clusters of
functions whose classification under the analysis is known by
construction:

* declared/plain readers (a/b), pointer pipelines (b), struct walkers
  (a/b), strchr-style scanners with a cast (a + b),
* selector / forwarder / global-getter units (c: 3, 2, and 1 positions
  respectively, so any gap count is composable),
* writers and library-call wrappers (d).

The generator composes units to hit the requested (a, b, c, d) exactly,
then pads with position-free filler functions (string tables, hash
functions, switch-heavy dispatchers) to reach the requested line count.
Everything is driven by a seeded :class:`random.Random`, so a given spec
always yields byte-identical source.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class PositionMix:
    """Exact interesting-position counts a generated program must have."""

    declared: int  # a
    mono_extra: int  # b
    poly_extra: int  # c
    other: int  # d

    @property
    def mono(self) -> int:
        return self.declared + self.mono_extra

    @property
    def poly(self) -> int:
        return self.mono + self.poly_extra

    @property
    def total(self) -> int:
        return self.poly + self.other

    @classmethod
    def from_table2(
        cls, declared: int, mono: int, poly: int, total: int
    ) -> "PositionMix":
        if not declared <= mono <= poly <= total:
            raise ValueError("Table 2 counts must be monotone")
        return cls(declared, mono - declared, poly - mono, total - poly)


class _Emitter:
    def __init__(self) -> None:
        self.chunks: list[str] = []
        self.protos: list[str] = []
        self.externs: list[str] = []
        self.preamble: list[str] = []
        self.line_count = 0

    def _count(self, text: str) -> None:
        self.line_count += text.count("\n") + 1

    def add(self, proto: str, body: str) -> None:
        self.protos.append(proto + ";")
        self.chunks.append(body)
        self._count(proto)
        self._count(body)

    def proto(self, text: str) -> None:
        self.protos.append(text)
        self._count(text)

    def extern(self, decl: str) -> None:
        self.externs.append(decl)
        self._count(decl)

    def top(self, text: str) -> None:
        self.preamble.append(text)
        self._count(text)

    def render(self, header: str) -> str:
        parts = [header, ""]
        parts.extend(self.preamble)
        parts.append("")
        parts.extend(self.externs)
        parts.append("")
        parts.extend(self.protos)
        parts.append("")
        parts.extend(self.chunks)
        return "\n".join(parts) + "\n"


class BenchmarkGenerator:
    """Generates one benchmark program for a position mix and line target."""

    def __init__(self, name: str, seed: int):
        self.name = name
        self.rng = random.Random(seed)
        self.em = _Emitter()
        self._counter = 0
        self._reader_names: list[str] = []
        self._filler_names: list[str] = []

    def _k(self) -> int:
        self._counter += 1
        return self._counter

    # ------------------------------------------------------------------
    # a-units: declared const readers
    # ------------------------------------------------------------------
    def unit_declared_reader(self) -> None:
        """1 declared position: a const pointer parameter, read only."""
        k = self._k()
        n = self.rng.randint(3, 8)
        body = (
            f"static int rd_{k}(const int *p) {{\n"
            f"    int acc = 0;\n"
            f"    int i;\n"
            f"    for (i = 0; i < {n}; i = i + 1) {{\n"
            f"        acc = acc + p[i];\n"
            f"    }}\n"
            f"    return acc;\n"
            f"}}\n"
            f"static int use_rd_{k}(void) {{\n"
            f"    int buf[{n}];\n"
            f"    int i;\n"
            f"    for (i = 0; i < {n}; i = i + 1) {{\n"
            f"        buf[i] = i * {self.rng.randint(2, 9)};\n"
            f"    }}\n"
            f"    return rd_{k}(buf);\n"
            f"}}\n"
        )
        self.em.add(f"static int rd_{k}(const int *p)", body)
        self.em.proto(f"static int use_rd_{k}(void);")
        self._reader_names.append(f"use_rd_{k}")

    def unit_declared_struct_reader(self) -> None:
        """1 declared position: const struct pointer, fields read only."""
        k = self._k()
        self.em.top(
            f"struct rec_{k} {{ int tag_{k}; int weight_{k}; }};"
        )
        body = (
            f"static int recw_{k}(const struct rec_{k} *r) {{\n"
            f"    if (r->tag_{k} > {self.rng.randint(1, 5)}) {{\n"
            f"        return r->weight_{k} * 2;\n"
            f"    }}\n"
            f"    return r->weight_{k};\n"
            f"}}\n"
            f"static int use_recw_{k}(void) {{\n"
            f"    struct rec_{k} r;\n"
            f"    r.tag_{k} = {self.rng.randint(0, 9)};\n"
            f"    r.weight_{k} = {self.rng.randint(1, 99)};\n"
            f"    return recw_{k}(&r);\n"
            f"}}\n"
        )
        self.em.add(f"static int recw_{k}(const struct rec_{k} *r)", body)
        self.em.proto(f"static int use_recw_{k}(void);")
        self._reader_names.append(f"use_recw_{k}")

    # ------------------------------------------------------------------
    # b-units: undeclared read-only positions
    # ------------------------------------------------------------------
    def unit_plain_reader(self) -> None:
        """1 mono-extra position: read-only pointer, const not written."""
        k = self._k()
        n = self.rng.randint(3, 8)
        body = (
            f"static int scan_sum_{k}(int *p) {{\n"
            f"    int acc = {self.rng.randint(0, 4)};\n"
            f"    int i;\n"
            f"    for (i = 0; i < {n}; i = i + 1) {{\n"
            f"        acc = acc + p[i] * {self.rng.randint(1, 4)};\n"
            f"    }}\n"
            f"    return acc;\n"
            f"}}\n"
            f"static int use_scan_sum_{k}(void) {{\n"
            f"    int data[{n}];\n"
            f"    int i;\n"
            f"    for (i = 0; i < {n}; i = i + 1) {{\n"
            f"        data[i] = i + {self.rng.randint(1, 7)};\n"
            f"    }}\n"
            f"    return scan_sum_{k}(data);\n"
            f"}}\n"
        )
        self.em.add(f"static int scan_sum_{k}(int *p)", body)
        self.em.proto(f"static int use_scan_sum_{k}(void);")
        self._reader_names.append(f"use_scan_sum_{k}")

    def unit_pipeline(self, depth: int = 2) -> None:
        """``depth`` mono-extra positions: a read-only pointer threaded
        through a chain of calls (const propagates along the chain)."""
        k = self._k()
        names = [f"pipe_{k}_{i}" for i in range(depth)]
        chunks = []
        # Innermost: plain read.
        chunks.append(
            f"static int {names[0]}(int *p) {{\n"
            f"    return p[0] + p[1];\n"
            f"}}\n"
        )
        for i in range(1, depth):
            chunks.append(
                f"static int {names[i]}(int *p) {{\n"
                f"    int bias = {self.rng.randint(0, 9)};\n"
                f"    return {names[i - 1]}(p) + bias;\n"
                f"}}\n"
            )
        chunks.append(
            f"static int use_pipe_{k}(void) {{\n"
            f"    int cells[4];\n"
            f"    cells[0] = {self.rng.randint(1, 9)};\n"
            f"    cells[1] = {self.rng.randint(1, 9)};\n"
            f"    cells[2] = 0;\n"
            f"    cells[3] = 0;\n"
            f"    return {names[-1]}(cells);\n"
            f"}}\n"
        )
        for name in names:
            self.em.proto(f"static int {name}(int *p);")
        self.em.proto(f"static int use_pipe_{k}(void);")
        self.em.chunks.append("".join(chunks))
        self._reader_names.append(f"use_pipe_{k}")

    def unit_strchr_like(self) -> None:
        """1 declared + 1 mono-extra: the paper's strchr pattern — a
        const parameter returned through a cast, result read only."""
        k = self._k()
        body = (
            f"static char *find_{k}(const char *s, int c) {{\n"
            f"    while (*s) {{\n"
            f"        if (*s == c) {{\n"
            f"            return (char *)s;\n"
            f"        }}\n"
            f"        s++;\n"
            f"    }}\n"
            f"    return (char *)0;\n"
            f"}}\n"
            f"static int use_find_{k}(void) {{\n"
            f"    char word[8];\n"
            f"    char *hit;\n"
            f"    word[0] = 'a';\n"
            f"    word[1] = 'b';\n"
            f"    word[2] = 0;\n"
            f"    hit = find_{k}(word, 'b');\n"
            f"    if (hit) {{\n"
            f"        return *hit;\n"
            f"    }}\n"
            f"    return 0;\n"
            f"}}\n"
        )
        self.em.add(f"static char *find_{k}(const char *s, int c)", body)
        self.em.proto(f"static int use_find_{k}(void);")
        self._reader_names.append(f"use_find_{k}")

    # ------------------------------------------------------------------
    # c-units: the polymorphism gap
    # ------------------------------------------------------------------
    def unit_selector(self) -> None:
        """3 poly-extra positions: a two-pointer selector used by both a
        writing and a reading caller; monomorphic inference poisons the
        selector's own signature, polymorphic inference does not."""
        k = self._k()
        body = (
            f"static int *sel_{k}(int *a, int *b, int w) {{\n"
            f"    if (w > 0) {{\n"
            f"        return a;\n"
            f"    }}\n"
            f"    return b;\n"
            f"}}\n"
            f"static void sel_put_{k}(void) {{\n"
            f"    int x;\n"
            f"    int y;\n"
            f"    int *r;\n"
            f"    x = 0;\n"
            f"    y = 0;\n"
            f"    r = sel_{k}(&x, &y, {self.rng.randint(0, 1)});\n"
            f"    *r = {self.rng.randint(1, 99)};\n"
            f"}}\n"
            f"static int sel_get_{k}(void) {{\n"
            f"    int u;\n"
            f"    int v;\n"
            f"    u = {self.rng.randint(1, 9)};\n"
            f"    v = {self.rng.randint(1, 9)};\n"
            f"    return *sel_{k}(&u, &v, 0);\n"
            f"}}\n"
        )
        self.em.add(f"static int *sel_{k}(int *a, int *b, int w)", body)
        self.em.proto(f"static void sel_put_{k}(void);")
        self.em.proto(f"static int sel_get_{k}(void);")
        self._reader_names.append(f"sel_get_{k}")

    def unit_forwarder(self) -> None:
        """2 poly-extra positions: identity-style forwarder (the paper's
        ``id1``/``id2`` example) with mixed const/non-const use."""
        k = self._k()
        body = (
            f"static int *fwd_{k}(int *x) {{\n"
            f"    return x;\n"
            f"}}\n"
            f"static void fwd_put_{k}(void) {{\n"
            f"    int slot;\n"
            f"    slot = 0;\n"
            f"    *fwd_{k}(&slot) = {self.rng.randint(1, 50)};\n"
            f"}}\n"
            f"static int fwd_get_{k}(void) {{\n"
            f"    int cell;\n"
            f"    cell = {self.rng.randint(1, 50)};\n"
            f"    return *fwd_{k}(&cell);\n"
            f"}}\n"
        )
        self.em.add(f"static int *fwd_{k}(int *x)", body)
        self.em.proto(f"static void fwd_put_{k}(void);")
        self.em.proto(f"static int fwd_get_{k}(void);")
        self._reader_names.append(f"fwd_get_{k}")

    def unit_global_getter(self) -> None:
        """1 poly-extra position: pointer-returning accessor of a global,
        written through by one caller and read by another."""
        k = self._k()
        self.em.top(f"static int slot_{k};")
        body = (
            f"static int *get_slot_{k}(void) {{\n"
            f"    return &slot_{k};\n"
            f"}}\n"
            f"static void set_slot_{k}(int v) {{\n"
            f"    *get_slot_{k}() = v;\n"
            f"}}\n"
            f"static int read_slot_{k}(void) {{\n"
            f"    return *get_slot_{k}();\n"
            f"}}\n"
        )
        self.em.add(f"static int *get_slot_{k}(void)", body)
        self.em.proto(f"static void set_slot_{k}(int v);")
        self.em.proto(f"static int read_slot_{k}(void);")
        self._reader_names.append(f"read_slot_{k}")

    # ------------------------------------------------------------------
    # d-units: genuinely non-const positions
    # ------------------------------------------------------------------
    def unit_writer(self) -> None:
        """1 other position: the parameter is written through."""
        k = self._k()
        n = self.rng.randint(3, 8)
        body = (
            f"static void fill_{k}(int *dst) {{\n"
            f"    int i;\n"
            f"    for (i = 0; i < {n}; i = i + 1) {{\n"
            f"        dst[i] = i * {self.rng.randint(1, 6)};\n"
            f"    }}\n"
            f"}}\n"
            f"static int use_fill_{k}(void) {{\n"
            f"    int area[{n}];\n"
            f"    fill_{k}(area);\n"
            f"    return area[0];\n"
            f"}}\n"
        )
        self.em.add(f"static void fill_{k}(int *dst)", body)
        self.em.proto(f"static int use_fill_{k}(void);")
        self._reader_names.append(f"use_fill_{k}")

    def unit_library_wrapper(self) -> None:
        """1 other position: the parameter flows to an undefined library
        function whose undeclared pointer parameters are pinned non-const
        (Section 4.2's conservative rule)."""
        k = self._k()
        self.em.extern(f"extern void sys_fill_{k}(int *dst, int n);")
        body = (
            f"static void wrap_fill_{k}(int *out, int n) {{\n"
            f"    sys_fill_{k}(out, n);\n"
            f"}}\n"
            f"static int use_wrap_{k}(void) {{\n"
            f"    int room[5];\n"
            f"    wrap_fill_{k}(room, 5);\n"
            f"    return room[2];\n"
            f"}}\n"
        )
        self.em.add(f"static void wrap_fill_{k}(int *out, int n)", body)
        self.em.proto(f"static int use_wrap_{k}(void);")
        self._reader_names.append(f"use_wrap_{k}")

    # ------------------------------------------------------------------
    # filler: position-free realism and line-count padding
    # ------------------------------------------------------------------
    def unit_filler(self) -> None:
        style = self.rng.randrange(3)
        k = self._k()
        if style == 0:
            cases = self.rng.randint(3, 7)
            lines = [f"static int classify_{k}(int code) {{", "    switch (code) {"]
            for c in range(cases):
                lines.append(f"    case {c}:")
                lines.append(f"        return {self.rng.randint(0, 99)};")
            lines.append("    default:")
            lines.append(f"        return {self.rng.randint(100, 199)};")
            lines.append("    }")
            lines.append("}")
            self.em.add(f"static int classify_{k}(int code)", "\n".join(lines) + "\n")
            self._filler_names.append(f"classify_{k}")
        elif style == 1:
            mult = self.rng.randint(3, 31)
            add = self.rng.randint(1, 17)
            body = (
                f"static int hash_step_{k}(int h, int c) {{\n"
                f"    h = h * {mult} + c;\n"
                f"    h = h ^ (h >> {self.rng.randint(2, 6)});\n"
                f"    return h + {add};\n"
                f"}}\n"
            )
            self.em.add(f"static int hash_step_{k}(int h, int c)", body)
            self._filler_names.append(f"hash_step_{k}")
        else:
            n = self.rng.randint(3, 6)
            body_lines = [f"static int poly_eval_{k}(int x) {{", "    int acc = 0;"]
            for i in range(n):
                body_lines.append(
                    f"    acc = acc * x + {self.rng.randint(-9, 9)};"
                )
            body_lines.append("    return acc;")
            body_lines.append("}")
            self.em.add(
                f"static int poly_eval_{k}(int x)", "\n".join(body_lines) + "\n"
            )
            self._filler_names.append(f"poly_eval_{k}")

    def unit_driver(self, batch: list[str]) -> None:
        """A driver calling a batch of entry points, connecting the FDG."""
        k = self._k()
        lines = [f"static int drive_{k}(void) {{", "    int total = 0;"]
        for name in batch:
            lines.append(f"    total = total + {name}();")
        lines.append("    return total;")
        lines.append("}")
        self.em.add(f"static int drive_{k}(void)", "\n".join(lines) + "\n")

    # ------------------------------------------------------------------
    def generate(self, mix: PositionMix, target_lines: int, description: str) -> str:
        rng = self.rng

        # -- c-units first (their composition is the most constrained).
        remaining_c = mix.poly_extra
        while remaining_c >= 3 and (remaining_c % 2 == 1 or rng.random() < 0.6):
            self.unit_selector()
            remaining_c -= 3
        while remaining_c >= 2:
            self.unit_forwarder()
            remaining_c -= 2
        if remaining_c == 1:
            self.unit_global_getter()
            remaining_c = 0

        # -- a/b: interleave strchr units (1a + 1b each) with singles.
        a, b = mix.declared, mix.mono_extra
        strchr_units = min(a, b, max(1, min(a, b) // 3)) if a and b else 0
        for _ in range(strchr_units):
            self.unit_strchr_like()
        a -= strchr_units
        b -= strchr_units
        while a > 0:
            if rng.random() < 0.3:
                self.unit_declared_struct_reader()
            else:
                self.unit_declared_reader()
            a -= 1
        while b > 0:
            if b >= 3 and rng.random() < 0.25:
                self.unit_pipeline(3)
                b -= 3
            elif b >= 2 and rng.random() < 0.35:
                self.unit_pipeline(2)
                b -= 2
            else:
                self.unit_plain_reader()
                b -= 1

        # -- d-units.
        d = mix.other
        while d > 0:
            if rng.random() < 0.35:
                self.unit_library_wrapper()
            else:
                self.unit_writer()
            d -= 1

        # -- drivers connecting everything.
        entries = list(self._reader_names)
        rng.shuffle(entries)
        for i in range(0, len(entries), 8):
            self.unit_driver(entries[i : i + 8])

        # -- pad with filler to the line target.
        header = (
            f"/* {self.name}: synthetic benchmark ({description}).\n"
            f" * Generated deterministically; see repro.benchsuite. */"
        )
        overhead = header.count("\n") + 8
        while self.em.line_count + overhead < target_lines:
            self.unit_filler()
        return self.em.render(header)


def generate_benchmark(
    name: str,
    seed: int,
    mix: PositionMix,
    target_lines: int,
    description: str = "",
) -> str:
    """Generate one benchmark's C source, deterministic in ``seed``."""
    return BenchmarkGenerator(name, seed).generate(mix, target_lines, description)
